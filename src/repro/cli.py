"""Command-line interface: ``python -m repro <command>``.

Mirrors the day-to-day gem5-SALAM workflow from a shell:

* ``compile``   — mini-C -> textual IR (clang stand-in), with -O / unroll knobs
* ``elaborate`` — static datapath report: CDFG, FU counts, static power/area
* ``analyze``   — static analysis: IR lints, memory-dependence report,
  footprint-vs-SPM checks; ``--format json`` + nonzero exit on errors
  make it a CI gate
* ``run``       — simulate a kernel on a workload from the registry
* ``workloads`` — list the bundled MachSuite-style benchmarks
* ``sweep``     — small port/FU design-space sweep with a Pareto summary
* ``serve``     — async simulation-as-a-service job server (`repro.serve`)
* ``submit``    — send a compile/run/sweep/analyze job to a running server

``run`` and ``sweep`` go through the `repro.exec` execution layer:
``--workers N`` fans sweep points out across processes and
``--cache-dir`` makes repeated configuration points near-free.

Examples::

    python -m repro compile kernel.c --unroll 4
    python -m repro compile kernel.c --passes mem2reg,unroll:4,constfold,dce
    python -m repro elaborate kernel.c --func saxpy --fu-limit fp_mul=2
    python -m repro analyze --all --format json -o report.json
    python -m repro analyze kernel.c --unroll 4 --spm-bytes 65536
    python -m repro analyze gemm --verify-each
    python -m repro run gemm --ports 8 --memory spm
    python -m repro sweep gemm_dse --unroll 8 --workers 4 --cache-dir .runcache
    python -m repro sweep gemm_dse --workers 4 --artifact-dir .artifacts
    python -m repro serve --port 8333 --workers 4 --cache-dir .runcache
    python -m repro submit run gemm_dse --ports 4 --unroll 2
    python -m repro submit sweep gemm_dse --ports 1 2 4 8 --events
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path


def _parse_fu_limits(entries: list[str]) -> dict[str, int]:
    limits: dict[str, int] = {}
    for entry in entries or []:
        name, __, count = entry.partition("=")
        if not count.isdigit():
            raise SystemExit(f"bad --fu-limit '{entry}' (expected CLASS=N)")
        limits[name] = int(count)
    return limits


def _read_source(path: str) -> str:
    source_path = Path(path)
    if not source_path.exists():
        raise SystemExit(f"no such file: {path}")
    return source_path.read_text()


def _artifact_store(args):
    """The --artifact-dir store (shared by every subcommand), or None."""
    path = getattr(args, "artifact_dir", None)
    if not path:
        return None
    from repro.build import ArtifactStore

    return ArtifactStore(path)


def _build_kernel(args, store=None):
    """The one compile path behind compile/elaborate: mini-C -> Artifact."""
    from repro.analysis import PassDivergenceError
    from repro.build import PipelineSpecError, build_module

    try:
        return build_module(
            _read_source(args.source),
            "module",
            pipeline=getattr(args, "passes", None),
            optimize=not getattr(args, "no_opt", False),
            opt_level=args.opt_level,
            unroll_factor=args.unroll,
            verify_each=getattr(args, "verify_each", False),
            store=store,
        )
    except PipelineSpecError as err:
        raise SystemExit(f"bad --passes spec: {err}")
    except PassDivergenceError as err:
        raise SystemExit(f"verified pipeline: {err}")


def _print_artifact(artifact, store) -> None:
    if store is None:
        return
    status = "store hit" if artifact.meta.get("cached") else "compiled"
    print(f"artifact        : {artifact.key[:12]} ({status})")


def cmd_compile(args: argparse.Namespace) -> int:
    from repro.ir.printer import print_module

    store = _artifact_store(args)
    artifact = _build_kernel(args, store)
    text = print_module(artifact.module)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
        _print_artifact(artifact, store)
    else:
        print(text)
    return 0


def cmd_elaborate(args: argparse.Namespace) -> int:
    from repro.build import BuildPipeline
    from repro.core.config import DeviceConfig

    store = _artifact_store(args)
    artifact = _build_kernel(args, store)
    func_name = args.func or next(iter(artifact.module.functions))
    config = DeviceConfig(fu_limits=_parse_fu_limits(args.fu_limit))
    design = BuildPipeline().elaborate(artifact, func_name, config=config).payload
    iface = design.iface
    print(f"function        : {func_name}")
    _print_artifact(artifact, store)
    print(f"instructions    : {iface.cdfg.total_instructions()}")
    print(f"basic blocks    : {len(iface.cdfg.blocks)}")
    print(f"register bits   : {iface.cdfg.register_bits}")
    print("functional units:")
    for fu_class, count in sorted(iface.cdfg.fu_counts.items()):
        print(f"  {fu_class:12s} {count}")
    print(f"static leakage  : {iface.static.fu_leakage_mw + iface.static.register_leakage_mw:.4f} mW")
    print(f"datapath area   : {(iface.static.fu_area_um2 + iface.static.register_area_um2) / 1e3:.1f} kum^2")
    return 0


def _extract_embedded_kernels(path: Path) -> list[tuple[str, str]]:
    """Mini-C kernel strings embedded in a Python file (``KERNEL = ...``).

    Walks the module AST for string constants that look like kernel
    source (a function definition with a body).  Returns
    ``[(label, source), ...]``; silently empty when nothing matches.
    """
    import ast as python_ast

    try:
        tree = python_ast.parse(path.read_text())
    except SyntaxError:
        return []
    found: list[tuple[str, str]] = []
    for node in python_ast.walk(tree):
        if not isinstance(node, python_ast.Assign):
            continue
        value = node.value
        if not (isinstance(value, python_ast.Constant)
                and isinstance(value.value, str)):
            continue
        text = value.value
        if "{" not in text or "(" not in text or ")" not in text:
            continue
        names = [t.id for t in node.targets
                 if isinstance(t, python_ast.Name)]
        label = names[0] if names else f"line{node.lineno}"
        found.append((f"{path.name}:{label}", text))
    return found


def _analyze_modules(target: str, args, store):
    """Resolve one ``analyze`` target to ``[(label, Module), ...]``.

    Accepts a bundled workload name, a ``.c`` / ``.ll`` file, or a
    Python file with embedded kernel strings (the ``examples/``).
    A `PassDivergenceError` from ``--verify-each`` propagates so the
    caller can report the offending pass as a diagnostic.
    """
    from repro.build import PipelineSpecError, build_module
    from repro.workloads import all_workload_names, get_workload

    build_kwargs = dict(
        pipeline=args.passes,
        optimize=not args.no_opt,
        opt_level=args.opt_level,
        verify_each=args.verify_each,
        store=store,
    )
    path = Path(target)
    try:
        if target in all_workload_names():
            workload = get_workload(target)
            unroll = (workload.default_unroll if args.unroll is None
                      else args.unroll)
            artifact = build_module(workload.source, workload.func_name,
                                    unroll_factor=unroll, **build_kwargs)
            return [(target, artifact.module)]
        if not path.exists():
            raise SystemExit(
                f"analyze: '{target}' is neither a bundled workload nor a file"
            )
        unroll = 1 if args.unroll is None else args.unroll
        if path.suffix == ".py":
            modules = []
            for label, source in _extract_embedded_kernels(path):
                try:
                    artifact = build_module(source, path.stem,
                                            unroll_factor=unroll,
                                            **build_kwargs)
                except Exception:  # noqa: BLE001 - not every string is a kernel
                    continue
                modules.append((label, artifact.module))
            return modules
        source = path.read_text()
        if path.suffix == ".ll":
            from repro.ir.parser import parse_module

            return [(target, parse_module(source))]
        artifact = build_module(source, path.stem, unroll_factor=unroll,
                                **build_kwargs)
        return [(target, artifact.module)]
    except PipelineSpecError as err:
        raise SystemExit(f"bad --passes spec: {err}")


def _analyze_one(label: str, module, args):
    """Full static-analysis report for one compiled module."""
    from repro.analysis import AnalysisReport, lint_function
    from repro.analysis.memdep import memdep_diagnostics
    from repro.analysis.syslint import (
        MemRegion,
        SystemDescription,
        footprints_from_module,
        lint_system,
    )

    report = AnalysisReport(subject=label)
    func_names = [f.name for f in module
                  if f.blocks and (not args.func or f.name == args.func)]
    for func_name in func_names:
        func = module.functions[func_name]
        lint_function(func, module, report=report)
        report.extend(memdep_diagnostics(func))
    if args.spm_bytes:
        desc = SystemDescription(
            regions=[MemRegion("spm", "spm", 0x2000_0000, args.spm_bytes)]
        )
        for func_name in func_names:
            desc.kernels.extend(
                footprints_from_module(module, func_name, region="spm"))
        report.extend(lint_system(desc))
    return report


def _analyze_scenario(spec_text: str):
    """System-level (SYS301-306) report for one scenario.

    ``gen:SEED[:racy]`` forms lint the generated scenario *statically*
    from its plan; named CNN scenarios run once and are linted from the
    recorded host/accelerator logs.
    """
    from repro.system import scenario_gen

    if spec_text.startswith("gen:"):
        spec = scenario_gen.parse_gen_spec(spec_text)
        scenario = scenario_gen.build(spec)
        report = scenario.static_report()
        report.subject = spec.name
        return report
    from repro.system.cnn_scenarios import SCENARIOS

    runner = SCENARIOS.get(spec_text)
    if runner is None:
        raise ValueError(
            f"unknown scenario '{spec_text}' "
            f"(choose from {', '.join(sorted(SCENARIOS))}, or gen:SEED[:racy])")
    result = runner()
    report = result.soc.lint()
    report.subject = spec_text
    return report


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import (
        AnalysisReport,
        Location,
        PassDivergenceError,
        Severity,
    )
    from repro.workloads import all_workload_names

    targets = list(args.targets)
    if args.all:
        targets.extend(n for n in all_workload_names() if n not in targets)
    scenarios = list(args.scenario or [])
    if not targets and not scenarios:
        raise SystemExit(
            "analyze: no targets (pass files/workloads, --scenario, or --all)")
    store = _artifact_store(args)
    reports = []
    for spec_text in scenarios:
        try:
            reports.append(_analyze_scenario(spec_text))
        except ValueError as err:
            raise SystemExit(f"analyze: {err}")
    for target in targets:
        try:
            resolved = _analyze_modules(target, args, store)
        except PassDivergenceError as err:
            report = AnalysisReport(subject=target)
            report.add(
                "VRF401", Severity.ERROR,
                Location(function=err.func_name),
                f"pass '{err.pass_name}' changed observable behaviour: "
                f"{err.detail}",
                hint="rerun without --verify-each to reproduce the "
                     "miscompile; the named pass is the first divergent one",
            )
            reports.append(report)
            continue
        if not resolved:
            print(f"analyze: no kernels found in '{target}'", file=sys.stderr)
            continue
        for label, module in resolved:
            reports.append(_analyze_one(label, module, args))
    merged = AnalysisReport.merged(reports, subject=",".join(scenarios + targets))
    if args.format == "json":
        text = merged.render_json()
    else:
        text = merged.render_text(show_timings=args.timings)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}")
        print(merged.summary_line())
    else:
        print(text)
    return merged.exit_code()


def cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import all_workload_names, get_workload

    for name in all_workload_names():
        print(f"{name:12s} {get_workload(name).description}")
    return 0


def _print_injected(context) -> None:
    """List the fault events that actually fired during a run."""
    injector = getattr(context, "fault_injector", None)
    if injector is None or not injector.injected:
        return
    for record in injector.injected:
        detail = {k: v for k, v in record.items()
                  if k not in ("tick", "kind", "target")}
        print(f"  fault @ tick {record['tick']:>8}: {record['kind']} "
              f"on {record['target']} {detail}")


def cmd_run(args: argparse.Namespace) -> int:
    from repro.core.config import DeviceConfig
    from repro.exec import FailureRecord, RunCache, SimContext
    from repro.faults import FaultConfigError, FaultPlan
    from repro.workloads import get_workload

    workload = get_workload(args.workload)
    config = DeviceConfig(
        clock_freq_hz=args.clock_mhz * 1e6,
        read_ports=args.ports,
        write_ports=max(1, args.ports // 2),
        fu_limits=_parse_fu_limits(args.fu_limit),
    )
    kwargs = dict(config=config, memory=args.memory, unroll_factor=args.unroll)
    if args.memory in ("spm", "ideal"):
        kwargs.update(spm_bytes=1 << 16, spm_read_ports=args.ports)
    cache = RunCache(args.cache_dir) if args.cache_dir else None
    store = _artifact_store(args)
    trace_cfg = None
    if args.trace or args.trace_out:
        from repro.trace import TraceConfig

        fmt = "text" if (args.trace_out or "").endswith((".txt", ".log")) else "chrome"
        trace_cfg = TraceConfig(channels=args.trace or "all",
                                out=args.trace_out, format=fmt)
    try:
        plan = FaultPlan.parse(args.inject or [], seed=args.seed)
    except FaultConfigError as err:
        raise SystemExit(f"bad --inject spec: {err}")
    context = SimContext(workload, seed=args.seed, cache=cache,
                         trace=trace_cfg, faults=plan,
                         timeout_s=args.point_timeout,
                         artifact_store=store, engine=args.engine,
                         sanitize=args.sanitize, **kwargs)
    hardened = bool(plan) or args.point_timeout is not None
    try:
        result = context.run()
    except Exception as exc:  # noqa: BLE001 - reported as a FailureRecord
        if not hardened:
            raise
        failure = FailureRecord.from_exception(exc)
        print(f"workload        : {workload.name} ({workload.description})")
        print(f"FAILED          : {failure.summary()} [{failure.reason}]")
        _print_injected(context)
        return 1
    print(f"workload        : {workload.name} ({workload.description})")
    if args.engine != "dynamic":
        used = context.engine_used or "none (cache hit, no simulation ran)"
        reason = context.fallback_reason
        print(f"engine          : {used}"
              + (f" (fallback: {reason})" if reason else ""))
    if plan:
        print(f"faults injected : {len(plan.events)} event(s) armed "
              "(results bypass the run cache)")
        _print_injected(context)
    if cache is not None and cache.hits:
        print("verified        : cached result (verified when first computed)")
    else:
        print("verified        : output matches the golden model")
    print(f"cycles          : {result.cycles}")
    print(f"runtime         : {result.runtime_ns / 1e3:.2f} us @ {args.clock_mhz} MHz")
    print(f"total power     : {result.power.total_mw:.3f} mW")
    print(f"datapath area   : {result.area.datapath_um2 / 1e3:.1f} kum^2")
    print(f"functional units: {dict(sorted(result.fu_counts.items()))}")
    print(f"stalled entries : {result.occupancy.entry_stall_fraction():.1%}")
    if args.sanitize and result.sanitizer is not None:
        san = result.sanitizer
        verdict = ("clean" if san["clean"]
                   else f"{len(san['races'])} race(s) detected")
        print(f"sanitizer       : {verdict} "
              f"({san['num_records']} accesses, {san['num_syncs']} sync ops, "
              f"{len(san['agents'])} agents; results bypass the run cache)")
        for race in san["races"][:5]:
            lo, hi = race["range"]
            print(f"  race: {race['kind']} {race['agents'][0]} vs "
                  f"{race['agents'][1]} at [{lo:#x}, {hi:#x})")
    if trace_cfg is not None:
        if context.trace_hub is None:
            print("trace           : skipped (cache hit -- no simulation ran; "
                  "rerun without --cache-dir to capture a trace)")
        else:
            hub = context.trace_hub
            print(f"trace           : {hub.total_emitted} events on "
                  f"{','.join(trace_cfg.channels)} "
                  f"({hub.total_dropped} dropped)")
            if trace_cfg.out:
                from repro.trace import write_trace

                write_trace(hub, trace_cfg.out, trace_cfg.format)
                print(f"trace written   : {trace_cfg.out} ({trace_cfg.format})")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.config import DeviceConfig
    from repro.dse import format_table, pareto_front
    from repro.exec import ParallelSweep, RunCache
    from repro.workloads import get_workload

    workload = get_workload(args.workload)

    def configure(params):
        return dict(
            config=DeviceConfig(read_ports=params["ports"],
                                write_ports=max(1, params["ports"] // 2)),
            memory="spm", spm_bytes=1 << 16, spm_read_ports=params["ports"],
            unroll_factor=args.unroll,
        )

    cache = RunCache(args.cache_dir) if args.cache_dir else None
    store = _artifact_store(args)
    checkpoint = None
    if args.checkpoint:
        from repro.exec import SweepCheckpoint

        checkpoint = SweepCheckpoint(args.checkpoint)
    executor = ParallelSweep(workers=args.workers, cache=cache,
                             point_timeout=args.point_timeout,
                             retries=args.retries, strict=args.strict,
                             artifact_store=store, engine=args.engine,
                             retime=args.retime, checkpoint=checkpoint)
    points = executor.run(workload, {"ports": args.ports}, configure,
                          seed=args.seed)
    healthy = [point for point in points if point.ok]
    front = pareto_front(healthy, objectives=lambda p: (p.runtime_us, p.power_mw))
    rows = []
    for point in points:
        row = point.record()
        row["pareto"] = "*" if point in front else ""
        rows.append(row)
    print(format_table(rows, title=f"{workload.name} port sweep"))
    failed = [point for point in points if not point.ok]
    for point in failed:
        print(f"failed point    : {point.params} -> {point.failure.summary()}")
    if cache is not None:
        print(f"run cache       : {cache.hits} hit(s), {cache.misses} miss(es)")
    if store is not None:
        print(f"artifact cache  : {store.hits} hit(s), "
              f"{store.misses} miss(es)")
    if args.retime or args.engine == "retime":
        print(f"trace cache     : {executor.trace_hits} hit(s), "
              f"{executor.trace_misses} miss(es)")
        print(f"retimed points  : {executor.retimed_points} of {len(points)} "
              f"({executor.datapath_groups} datapath group(s), "
              f"{executor.trace_captures} trace(s) captured)")
        report = executor.partition_report
        for diag in (report.diagnostics if report is not None else []):
            print(f"warning         : [{diag.code}] {diag.message}")
    if checkpoint is not None:
        print(f"checkpoint      : {checkpoint.resumed} point(s) resumed "
              f"from {checkpoint.path}")
    return 1 if failed else 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.exec import RunCache
    from repro.serve.server import serve_forever

    cache = RunCache(args.cache_dir) if args.cache_dir else None
    store = _artifact_store(args)

    def announce(port: int) -> None:
        durable = (f", state dir {args.state_dir}" if args.state_dir else "")
        print(f"repro serve listening on http://{args.host}:{port} "
              f"({args.workers} worker(s){durable})", flush=True)

    try:
        serve_forever(host=args.host, port=args.port, workers=args.workers,
                      run_cache=cache, artifact_store=store,
                      announce=announce, state_dir=args.state_dir,
                      drain_timeout=args.drain_timeout)
    except KeyboardInterrupt:
        pass
    print("repro serve: shut down cleanly")
    return 0


def _submit_spec(args: argparse.Namespace) -> dict:
    """One job spec from the ``repro submit`` arguments."""
    from repro.workloads import all_workload_names

    spec: dict = {"seed": args.seed, "unroll": args.unroll}
    target = args.target
    if args.kind == "analyze" and (
            target.startswith("gen:")
            or target in ("private_spm", "shared_spm", "stream")):
        spec["scenario"] = target
    elif target in all_workload_names():
        spec["workload"] = target
    elif Path(target).exists():
        spec["source"] = _read_source(target)
        spec["func"] = args.func or Path(target).stem
    else:
        # Let the server report the unknown workload as a job failure.
        spec["workload"] = target
    if args.kind in ("run", "sweep"):
        spec.update(memory=args.memory, engine=args.engine)
        if args.kind == "run":
            spec["ports"] = args.ports[0] if args.ports else 2
        else:
            spec["ports"] = args.ports or [1, 2, 4, 8]
    if args.passes:
        spec["passes"] = args.passes
    # Per-job durability policy (retry/backoff/timeout), enforced by
    # the server's worker pool.
    if args.retries:
        spec["retries"] = args.retries
    if args.backoff_s is not None:
        spec["backoff_s"] = args.backoff_s
    if args.job_timeout is not None:
        spec["timeout_s"] = args.job_timeout
    return spec


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient, ServeError
    from repro.serve.jobs import JobState

    client = ServeClient(host=args.host, port=args.port)
    try:
        job = client.submit(args.kind, _submit_spec(args),
                            priority=args.priority)
        print(f"job             : {job['id']} ({args.kind})")
        if job.get("deduped_of"):
            print(f"dedup           : coalesced onto {job['deduped_of']} "
                  "(identical active request)")
        if args.events and job["state"] in JobState.ACTIVE:
            for event in client.events(job["id"]):
                detail = {k: v for k, v in event.items()
                          if k not in ("seq", "t", "event")}
                print(f"  event {event['seq']:>3}: {event['event']} "
                      f"{detail if detail else ''}".rstrip())
        if not args.no_wait and job["state"] in JobState.ACTIVE:
            job = client.wait(job["id"], timeout=args.timeout)
    except ServeError as err:
        raise SystemExit(f"submit: {err}")
    except ConnectionError as err:
        raise SystemExit(f"submit: cannot reach {args.host}:{args.port} "
                         f"({err}); is `repro serve` running?")
    print(f"state           : {job['state']}")
    if job.get("cache_hit"):
        print("cache hit       : yes (served from the run cache)")
    if job["state"] == JobState.FAILED:
        failure = job.get("failure") or {}
        print(f"FAILED          : {failure.get('error_type')}: "
              f"{failure.get('message')}")
        return 1
    result = job.get("result")
    if job["state"] == JobState.DONE and result is not None:
        _print_submit_result(args.kind, result)
    return 0


def _print_submit_result(kind: str, result: dict) -> None:
    if kind == "run":
        from repro.exec import RunResult

        run = RunResult.from_dict(result)
        print(f"cycles          : {run.cycles}")
        print(f"runtime         : {run.runtime_ns / 1e3:.2f} us")
        print(f"total power     : {run.power.total_mw:.3f} mW")
    elif kind == "sweep":
        from repro.dse import format_table

        print(format_table(result["rows"], title="sweep"))
        if result.get("failed"):
            print(f"failed points   : {result['failed']}")
    elif kind == "compile":
        status = "store hit" if result.get("store_hit") else "compiled"
        print(f"artifact        : {result['artifact_key'][:12]} ({status})")
        print(result["ir"])
    elif kind == "analyze":
        diags = result.get("diagnostics", [])
        print(f"diagnostics     : {len(diags)}")
        for diag in diags:
            print(f"  {diag.get('code')} [{diag.get('severity')}] "
                  f"{diag.get('message')}")


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.engine.bench import check_bench, run_bench, write_bench

    payload = run_bench(workloads=args.workloads, unroll=args.unroll,
                        seed=args.seed, quick=args.quick,
                        repeats=args.repeats, serve_jobs=args.serve_jobs,
                        sweep_ports=args.sweep_ports)
    path = write_bench(payload, args.out)
    header = (f"{'workload':12s} {'cycles':>10s} {'dynamic':>10s} "
              f"{'graph':>10s} {'speedup':>8s}  identical")
    print(header)
    print("-" * len(header))
    for name, row in payload["workloads"].items():
        print(f"{name:12s} {row['cycles']:>10d} "
              f"{row['dynamic_wall_s']:>9.3f}s {row['graph_wall_s']:>9.3f}s "
              f"{row['speedup']:>7.2f}x  "
              f"{'yes' if row['identical_stats'] else 'NO'}")
    swp = payload.get("sweep")
    if swp:
        print(f"retime sweep    : {swp['workload']} x {swp['points']} "
              f"memory-only points in {swp['retime_wall_s']:.3f}s vs "
              f"dynamic {swp['dynamic_wall_s']:.3f}s / graph "
              f"{swp['graph_wall_s']:.3f}s "
              f"({swp['speedup_vs_dynamic']:.1f}x / "
              f"{swp['speedup_vs_graph']:.1f}x, "
              f"{swp['retimed_points']} retimed, rows "
              f"{'identical' if swp['identical_rows'] else 'DIFFER'})")
    serve = payload.get("serve")
    if serve:
        print(f"serve dedup     : {serve['jobs']} duplicate jobs in "
              f"{serve['duplicate_wall_s']:.3f}s vs distinct in "
              f"{serve['distinct_wall_s']:.3f}s "
              f"({serve['dedup_speedup']:.1f}x, "
              f"{serve['executed']} executed)")
    print(f"wrote {path}")
    failures = check_bench(payload, min_speedup=args.min_speedup,
                           min_sweep_speedup=args.min_sweep_speedup)
    for failure in failures:
        print(f"bench FAILED    : {failure}", file=sys.stderr)
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro", description="gem5-SALAM reproduction toolkit"
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile mini-C to textual IR")
    p_compile.add_argument("source")
    p_compile.add_argument("--output", "-o")
    p_compile.add_argument("--unroll", type=int, default=1)
    p_compile.add_argument("--opt-level", type=int, default=1, choices=[1, 2])
    p_compile.add_argument("--no-opt", action="store_true")
    p_compile.add_argument("--passes", metavar="SPEC",
                           help="explicit pass pipeline, e.g. "
                                "'mem2reg,unroll:4,constfold,dce' or a "
                                "preset 'o1'/'o2' (overrides --opt-level/"
                                "--unroll/--no-opt)")
    p_compile.add_argument("--artifact-dir", metavar="DIR",
                           help="content-addressed build-artifact store "
                                "(recompiles of the same kernel are free)")
    p_compile.add_argument("--verify-each", action="store_true",
                           help="differentially verify every pass against "
                                "the golden interpreter; a miscompiling "
                                "pass fails the build by name")
    p_compile.set_defaults(handler=cmd_compile)

    p_elab = sub.add_parser("elaborate", help="static datapath report")
    p_elab.add_argument("source")
    p_elab.add_argument("--func")
    p_elab.add_argument("--unroll", type=int, default=1)
    p_elab.add_argument("--opt-level", type=int, default=1, choices=[1, 2])
    p_elab.add_argument("--fu-limit", action="append", metavar="CLASS=N")
    p_elab.add_argument("--passes", metavar="SPEC",
                        help="explicit pass pipeline (see 'compile --passes')")
    p_elab.add_argument("--artifact-dir", metavar="DIR",
                        help="content-addressed build-artifact store")
    p_elab.add_argument("--verify-each", action="store_true",
                        help="differentially verify every pass against the "
                             "golden interpreter (see 'compile --verify-each')")
    p_elab.set_defaults(handler=cmd_elaborate)

    p_an = sub.add_parser(
        "analyze",
        help="static analysis: IR lints + dependence report (CI gate)")
    p_an.add_argument("targets", nargs="*",
                      help="workload names, .c kernels, .ll IR files, or "
                           "Python files with embedded kernel strings")
    p_an.add_argument("--all", action="store_true",
                      help="also analyze every bundled workload")
    p_an.add_argument("--func", help="restrict to one function")
    p_an.add_argument("--unroll", type=int, default=None,
                      help="unroll factor (default: the workload's own "
                           "default, or 1 for files)")
    p_an.add_argument("--opt-level", type=int, default=1, choices=[1, 2])
    p_an.add_argument("--no-opt", action="store_true",
                      help="lint the raw (unoptimized) IR")
    p_an.add_argument("--passes", metavar="SPEC",
                      help="explicit pass pipeline (see 'compile --passes')")
    p_an.add_argument("--verify-each", action="store_true",
                      help="differentially verify every pass while "
                           "compiling; a divergent pass becomes a VRF401 "
                           "error naming the pass")
    p_an.add_argument("--scenario", action="append", metavar="NAME",
                      help="system-level concurrency lint (SYS301-306) of a "
                           "scenario: a CNN integration scenario by name "
                           "(private_spm, shared_spm, stream; runs it once), "
                           "or gen:SEED[:racy] for a generated topology "
                           "(linted statically from its plan); repeatable")
    p_an.add_argument("--spm-bytes", type=int, metavar="N",
                      help="check each kernel's static footprint against "
                           "an N-byte scratchpad (SYS302)")
    p_an.add_argument("--format", choices=["text", "json"], default="text")
    p_an.add_argument("--output", "-o", metavar="FILE",
                      help="write the report to FILE instead of stdout")
    p_an.add_argument("--timings", action="store_true",
                      help="include per-rule wall-clock timings (text format)")
    p_an.add_argument("--artifact-dir", metavar="DIR",
                      help="content-addressed build-artifact store")
    p_an.set_defaults(handler=cmd_analyze)

    p_list = sub.add_parser("workloads", help="list bundled benchmarks")
    p_list.set_defaults(handler=cmd_workloads)

    p_run = sub.add_parser("run", help="simulate a bundled workload")
    p_run.add_argument("workload")
    p_run.add_argument("--memory", choices=["spm", "cache", "ideal"], default="spm")
    p_run.add_argument("--ports", type=int, default=2)
    p_run.add_argument("--unroll", type=int, default=1)
    p_run.add_argument("--clock-mhz", type=float, default=100.0)
    p_run.add_argument("--seed", type=int, default=7)
    p_run.add_argument("--fu-limit", action="append", metavar="CLASS=N")
    p_run.add_argument("--cache-dir", metavar="DIR",
                       help="content-addressed run cache (reruns are near-free)")
    p_run.add_argument("--trace", metavar="CHANNELS",
                       help="capture a trace of the listed channels "
                            "(comma-separated, or 'all'): compute,mem,dma,"
                            "irq,host,sched,faults")
    p_run.add_argument("--trace-out", metavar="FILE",
                       help="write the trace to FILE (Chrome trace-event "
                            "JSON, loadable in Perfetto; .txt/.log for "
                            "plain text)")
    p_run.add_argument("--inject", action="append", metavar="FAULTSPEC",
                       help="inject a deterministic fault, e.g. "
                            "'bit_flip@spm:access=1,addr=0x20000007,bit=6' "
                            "or 'port_stall@memctrl:tick=5000,cycles=200' "
                            "(kinds: bit_flip,mmr_corrupt,dma_drop,dma_delay,"
                            "port_stall,mem_drop; repeatable)")
    p_run.add_argument("--point-timeout", type=float, metavar="SECONDS",
                       help="abort the run after this much wall-clock time "
                            "and report the hang instead of spinning")
    p_run.add_argument("--artifact-dir", metavar="DIR",
                       help="content-addressed build-artifact store "
                            "(kernel compiles are cached across runs)")
    p_run.add_argument("--engine", choices=["dynamic", "graph", "retime"],
                       default="dynamic",
                       help="execution backend: the dynamic event-queue "
                            "engine, the graph-compiled fast path, or "
                            "trace-replay re-timing (byte-identical stats; "
                            "falls back for features it does not model)")
    p_run.add_argument("--sanitize", action="store_true",
                       help="attach the runtime access sanitizer: vector-"
                            "clock race detection over every attributed "
                            "memory access (zero timing impact; results "
                            "bypass the run cache)")
    p_run.set_defaults(handler=cmd_run)

    p_sweep = sub.add_parser("sweep", help="port sweep with Pareto summary")
    p_sweep.add_argument("workload")
    p_sweep.add_argument("--ports", type=int, nargs="+", default=[1, 2, 4, 8])
    p_sweep.add_argument("--unroll", type=int, default=1)
    p_sweep.add_argument("--seed", type=int, default=7)
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="fan the sweep out over N processes")
    p_sweep.add_argument("--cache-dir", metavar="DIR",
                         help="content-addressed run cache (reruns are near-free)")
    p_sweep.add_argument("--point-timeout", type=float, metavar="SECONDS",
                         help="per-point wall-clock budget; a point that "
                              "exceeds it becomes a failed row, not a hang")
    p_sweep.add_argument("--retries", type=int, default=0,
                         help="resubmit points lost to crashed workers up "
                              "to N times before running them serially")
    p_sweep.add_argument("--strict", action="store_true",
                         help="fail fast on the first failed point instead "
                              "of degrading gracefully")
    p_sweep.add_argument("--artifact-dir", metavar="DIR",
                         help="content-addressed build-artifact store; the "
                              "kernel is compiled once per sweep and hits "
                              "on reruns")
    p_sweep.add_argument("--checkpoint", metavar="FILE",
                         help="durable sweep checkpoint (JSONL): completed "
                              "points are appended as they finish, and a "
                              "re-run resumes from them instead of "
                              "re-simulating")
    p_sweep.add_argument("--engine", choices=["dynamic", "graph", "retime"],
                         default="dynamic",
                         help="execution backend for every point (see "
                              "'run --engine')")
    p_sweep.add_argument("--retime", action=argparse.BooleanOptionalAction,
                         default=False,
                         help="incremental re-simulation: one full graph "
                              "run per distinct datapath, memory-only "
                              "points re-timed from its captured schedule "
                              "trace (byte-identical rows; see DESIGN.md)")
    p_sweep.set_defaults(handler=cmd_sweep)

    p_serve = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service job server")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8333,
                         help="listen port (0 picks an ephemeral one)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="background executor threads draining the "
                              "job queue")
    p_serve.add_argument("--cache-dir", metavar="DIR",
                         help="on-disk run cache shared by every job "
                              "(in-memory only when omitted)")
    p_serve.add_argument("--state-dir", metavar="DIR",
                         help="durable server state: a write-ahead job "
                              "journal under DIR records every submission "
                              "and transition, and a restarted server "
                              "replays it — re-queueing in-flight jobs and "
                              "still serving results for finished ones")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="graceful-drain budget: how long SIGTERM or "
                              "POST /v1/shutdown?mode=drain waits for "
                              "running jobs before exiting (default 30)")
    p_serve.add_argument("--artifact-dir", metavar="DIR",
                         help="on-disk build-artifact store shared by "
                              "every job")
    p_serve.set_defaults(handler=cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit a job to a running `repro serve` instance")
    p_submit.add_argument("kind", choices=["compile", "run", "sweep",
                                           "analyze"])
    p_submit.add_argument("target",
                          help="a bundled workload name or a kernel file; "
                               "for analyze, also a scenario (private_spm, "
                               "shared_spm, stream, or gen:SEED[:racy])")
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=8333)
    p_submit.add_argument("--ports", type=int, nargs="+",
                          help="read ports (run uses the first value, "
                               "sweep runs the whole list)")
    p_submit.add_argument("--unroll", type=int, default=1)
    p_submit.add_argument("--seed", type=int, default=7)
    p_submit.add_argument("--memory", choices=["spm", "cache", "ideal"],
                          default="spm")
    p_submit.add_argument("--engine", choices=["dynamic", "graph", "retime"],
                          default="dynamic")
    p_submit.add_argument("--func", help="entry function for kernel files")
    p_submit.add_argument("--passes", metavar="SPEC",
                          help="explicit pass pipeline (see 'compile')")
    p_submit.add_argument("--retries", type=int, default=0,
                          help="per-job retry budget: the server re-queues "
                               "a failed attempt up to N times with "
                               "exponential backoff")
    p_submit.add_argument("--backoff-s", type=float, default=None,
                          metavar="SECONDS",
                          help="base retry backoff (doubles per attempt, "
                               "capped; server default 0.5)")
    p_submit.add_argument("--job-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="per-attempt wall-clock budget enforced by "
                               "the simulation watchdog")
    p_submit.add_argument("--priority", type=int, default=0,
                          help="higher runs earlier")
    p_submit.add_argument("--no-wait", action="store_true",
                          help="print the job id and return without "
                               "polling for the result")
    p_submit.add_argument("--events", action="store_true",
                          help="stream the job's progress events (SSE) "
                               "while it runs")
    p_submit.add_argument("--timeout", type=float, default=300.0,
                          help="seconds to wait for completion")
    p_submit.set_defaults(handler=cmd_submit)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark the graph engine against the dynamic engine")
    p_bench.add_argument("--workloads", nargs="+", metavar="NAME",
                         help="workloads to measure (default: gemm "
                              "stencil3d fft spmv)")
    p_bench.add_argument("--unroll", type=int, default=4)
    p_bench.add_argument("--seed", type=int, default=7)
    p_bench.add_argument("--quick", action="store_true",
                         help="smoke mode: only the first workload (CI)")
    p_bench.add_argument("--repeats", type=int, default=3, metavar="N",
                         help="timed repetitions per engine; the minimum "
                              "wall-clock is reported (default: 3)")
    p_bench.add_argument("--out", metavar="FILE", default="BENCH_9.json",
                         help="where to write the JSON record "
                              "(default: BENCH_9.json)")
    p_bench.add_argument("--sweep-ports", type=int, nargs="*",
                         default=[1, 2, 4, 8], metavar="P",
                         help="memory-only port grid for the incremental "
                              "re-simulation sweep bench (no values "
                              "disables it)")
    p_bench.add_argument("--serve-jobs", type=int, default=20, metavar="N",
                         help="also bench the job server: N duplicate run "
                              "jobs vs N distinct ones (0 disables; quick "
                              "mode caps at 5)")
    p_bench.add_argument("--min-speedup", type=float, default=0.0,
                         metavar="RATIO",
                         help="fail unless the graph engine reaches this "
                              "speedup over dynamic on the first workload "
                              "(CI uses 1.0)")
    p_bench.add_argument("--min-sweep-speedup", type=float, default=0.0,
                         metavar="RATIO",
                         help="fail unless retime mode reaches this "
                              "aggregate speedup over the dynamic sweep "
                              "(the local gate is 5.0; CI smoke uses 1.0)")
    p_bench.set_defaults(handler=cmd_bench)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Output piped into e.g. `head` that exited early; the
        # conventional quiet death, not a stack trace.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
