"""The staged pipeline: stage products, timing, tracing, store chaining."""

import pytest

from repro.build import (
    Artifact,
    ArtifactStore,
    BuildPipeline,
    ElaboratedDesign,
    PipelineSpec,
    build_design,
    build_module,
)
from repro.build.pipeline import STAGE_COUNTERS, resolve_spec
from repro.core.config import DeviceConfig
from repro.ir.module import Module
from repro.ir.printer import print_module
from repro.trace import TraceConfig

SRC = """
void saxpy(double a[16], double x[16], double y[16]) {
  for (int i = 0; i < 16; i++) { y[i] = 2.0 * a[i] * x[i] + y[i]; }
}
"""


# -- individual stages ------------------------------------------------------
def test_stage_chain_kinds():
    bp = BuildPipeline("o1")
    ast = bp.parse(SRC)
    ir = bp.lower(ast, "saxpy")
    opt = bp.optimize(ir)
    design = bp.elaborate(opt, "saxpy")
    assert [a.kind for a in (ast, ir, opt, design)] == [
        "ast", "ir", "opt-ir", "design"]
    assert isinstance(ir.module, Module)
    assert isinstance(design.payload, ElaboratedDesign)
    assert design.payload.func_name == "saxpy"
    assert design.payload.cdfg.total_instructions() > 0


def test_optimize_records_pipeline_and_fingerprint():
    bp = BuildPipeline("mem2reg,dce")
    opt = bp.optimize(bp.lower(bp.parse(SRC), "saxpy"))
    assert opt.meta["pipeline"] == "mem2reg,dce"
    assert len(opt.meta["fingerprint"]) == 64


def test_per_stage_timings_recorded():
    bp = BuildPipeline("o1")
    artifact = bp.build_module(SRC, "saxpy")
    timings = artifact.meta["timings"]
    stages = {name for name in timings if not name.startswith("pass:")}
    assert stages == {"parse", "lower", "optimize"}
    # Every executed pass contributes its own timing alongside the stages.
    assert any(name.startswith("pass:") for name in timings)
    assert all(seconds >= 0 for seconds in timings.values())
    assert bp.timings == timings


def test_build_events_on_trace_channel():
    hub = TraceConfig(channels="build").make_hub()
    build_module(SRC, "saxpy", pipeline="o1", trace_hub=hub)
    kinds = [e.kind for e in hub.events()]
    stages = [k for k in kinds if not k.startswith("pass:")]
    assert stages == ["parse", "lower", "optimize"]
    # Per-pass events are mirrored onto the same channel.
    assert any(k.startswith("pass:") for k in kinds)


def test_untraced_channels_stay_silent():
    hub = TraceConfig(channels="compute").make_hub()
    build_module(SRC, "saxpy", pipeline="o1", trace_hub=hub)
    assert hub.total_emitted == 0


# -- chained entry points ---------------------------------------------------
def test_build_module_store_chaining():
    store = ArtifactStore()
    first = build_module(SRC, "saxpy", pipeline="o1", store=store)
    second = build_module(SRC, "saxpy", pipeline="o1", store=store)
    assert store.hits == 1 and store.misses == 1
    assert second.meta["cached"] is True
    assert second.key == first.key
    assert print_module(second.module) == print_module(first.module)


def test_prebuilt_module_passes_through():
    module = build_module(SRC, "saxpy", pipeline="o1").module
    before = STAGE_COUNTERS.snapshot()
    artifact = build_module(module, "saxpy", pipeline="o1")
    assert STAGE_COUNTERS.snapshot() == before  # no stage ran
    assert artifact.module is module
    assert artifact.meta["prebuilt"] is True


def test_opt_ir_artifact_passes_through():
    artifact = build_module(SRC, "saxpy", pipeline="o1")
    assert BuildPipeline("o1").build_module(artifact, "saxpy") is artifact


def test_build_design_full_chain():
    config = DeviceConfig(fu_limits={"fp_mul": 1})
    design = build_design(SRC, "saxpy", pipeline="o1", config=config)
    assert isinstance(design, ElaboratedDesign)
    assert design.cdfg.fu_counts["fp_mul"] == 1
    assert design.static.fu_area_um2 > 0


def test_different_pipelines_get_different_keys():
    store = ArtifactStore()
    a = build_module(SRC, "saxpy", pipeline="o1", store=store)
    b = build_module(SRC, "saxpy", pipeline="o2", store=store)
    assert a.key != b.key
    assert store.hits == 0 and store.misses == 2
    assert len(store) == 2


# -- knob resolution --------------------------------------------------------
def test_resolve_spec_precedence():
    explicit = resolve_spec("mem2reg,dce", optimize=False, unroll_factor=8)
    assert explicit == PipelineSpec.parse("mem2reg,dce")
    assert resolve_spec(None, optimize=False) == PipelineSpec()
    assert resolve_spec(None, opt_level=2, unroll_factor=4) == \
        PipelineSpec.standard(2, 4)


def test_legacy_knobs_and_spec_share_cache_entries():
    store = ArtifactStore()
    build_module(SRC, "saxpy", opt_level=1, unroll_factor=4, store=store)
    hit = build_module(SRC, "saxpy", pipeline="o1:4", store=store)
    assert store.hits == 1
    assert hit.meta["cached"] is True


def test_bad_pipeline_spec_surfaces():
    from repro.build import PipelineSpecError

    with pytest.raises(PipelineSpecError):
        build_module(SRC, "saxpy", pipeline="frobnicate")


# -- execution-layer integration -------------------------------------------
def test_sim_context_accepts_prebuilt_artifact():
    from repro.exec import SimContext
    from repro.workloads import get_workload

    workload = get_workload("gemm_dse")
    baseline = SimContext(workload).run()
    # unroll_factor=1 matches the context's default compile knobs
    # (Workload.build alone would honour default_unroll instead).
    artifact = workload.build(unroll_factor=1)
    prebuilt = SimContext(workload, module=artifact).run()
    assert prebuilt.cycles == baseline.cycles
    assert prebuilt.runtime_ns == baseline.runtime_ns


def test_sim_contexts_share_artifact_store():
    from repro.exec import SimContext
    from repro.workloads import get_workload

    workload = get_workload("gemm_dse")
    store = ArtifactStore()
    first = SimContext(workload, artifact_store=store).run()
    second = SimContext(workload, artifact_store=store).run()
    assert store.hits == 1 and store.misses == 1
    assert second.cycles == first.cycles
