"""Memory packets.

A :class:`Packet` is the unit of communication on ports: a command
(read/write), an address range, and — for functional correctness — the
actual data bytes.  Packets carry an opaque ``origin`` so the requester
can match responses to outstanding operations, and accumulate latency
annotations as they traverse the hierarchy.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

_packet_ids = itertools.count()


class MemCmd(enum.Enum):
    READ = "read"
    WRITE = "write"
    READ_RESP = "read_resp"
    WRITE_RESP = "write_resp"

    @property
    def is_request(self) -> bool:
        return self in (MemCmd.READ, MemCmd.WRITE)

    @property
    def is_read(self) -> bool:
        return self in (MemCmd.READ, MemCmd.READ_RESP)

    @property
    def is_write(self) -> bool:
        return self in (MemCmd.WRITE, MemCmd.WRITE_RESP)

    def response(self) -> "MemCmd":
        if self is MemCmd.READ:
            return MemCmd.READ_RESP
        if self is MemCmd.WRITE:
            return MemCmd.WRITE_RESP
        raise ValueError(f"{self} has no response command")


class Packet:
    """A memory request or response."""

    __slots__ = (
        "cmd",
        "addr",
        "size",
        "data",
        "origin",
        "agent",
        "pkt_id",
        "req_tick",
        "resp_tick",
        "hops",
        "hit_level",
    )

    def __init__(
        self,
        cmd: MemCmd,
        addr: int,
        size: int,
        data: Optional[bytes] = None,
        origin: Any = None,
        agent: Optional[str] = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        if cmd.is_write and cmd.is_request and (data is None or len(data) != size):
            raise ValueError("write request must carry data of exactly `size` bytes")
        self.cmd = cmd
        self.addr = addr
        self.size = size
        self.data = data
        self.origin = origin
        # Identity of the requesting agent (host, a DMA engine, an
        # accelerator's memory controller) for access attribution —
        # consumed by the runtime sanitizer; None on internal traffic
        # like cache fills, which proxy an already-recorded access.
        self.agent = agent
        self.pkt_id = next(_packet_ids)
        self.req_tick: int = -1
        self.resp_tick: int = -1
        self.hops: list[str] = []
        self.hit_level: str = ""

    # ------------------------------------------------------------------
    @property
    def is_request(self) -> bool:
        return self.cmd.is_request

    @property
    def is_read(self) -> bool:
        return self.cmd.is_read

    @property
    def is_write(self) -> bool:
        return self.cmd.is_write

    def make_response(self, data: Optional[bytes] = None) -> "Packet":
        """Build the matching response packet (sharing origin and id)."""
        if self.cmd is MemCmd.READ and data is None:
            raise ValueError("read response must carry data")
        resp = Packet(
            self.cmd.response(),
            self.addr,
            self.size,
            data=data,
            origin=self.origin,
            agent=self.agent,
        )
        resp.pkt_id = self.pkt_id
        resp.req_tick = self.req_tick
        resp.hops = list(self.hops)
        resp.hit_level = self.hit_level
        return resp

    def overlaps(self, addr: int, size: int) -> bool:
        return self.addr < addr + size and addr < self.addr + self.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Packet #{self.pkt_id} {self.cmd.value} "
            f"addr={self.addr:#x} size={self.size}>"
        )


def read_packet(
    addr: int, size: int, origin: Any = None, agent: Optional[str] = None
) -> Packet:
    return Packet(MemCmd.READ, addr, size, origin=origin, agent=agent)


def write_packet(
    addr: int, data: bytes, origin: Any = None, agent: Optional[str] = None
) -> Packet:
    return Packet(MemCmd.WRITE, addr, len(data), data=bytes(data), origin=origin, agent=agent)
