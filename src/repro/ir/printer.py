"""Textual IR printer.

Emits an LLVM-flavoured dialect that `repro.ir.parser` parses back
(round-trip property-tested).  Deviations from stock LLVM syntax are
deliberate simplifications: ``load``/``getelementptr`` use the legacy
typed-pointer forms.
"""

from __future__ import annotations

from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Instruction, Value


def _operand(value: Value) -> str:
    return f"{value.type} {value.ref}"


def print_instruction(inst: Instruction) -> str:
    if isinstance(inst, BinaryOp):
        return f"{inst.ref} = {inst.opcode} {inst.type} {inst.lhs.ref}, {inst.rhs.ref}"
    if isinstance(inst, ICmp):
        a, b = inst.operands
        return f"{inst.ref} = icmp {inst.pred} {a.type} {a.ref}, {b.ref}"
    if isinstance(inst, FCmp):
        a, b = inst.operands
        return f"{inst.ref} = fcmp {inst.pred} {a.type} {a.ref}, {b.ref}"
    if isinstance(inst, Select):
        c, t, f = inst.operands
        return f"{inst.ref} = select i1 {c.ref}, {_operand(t)}, {_operand(f)}"
    if isinstance(inst, Cast):
        return f"{inst.ref} = {inst.opcode} {_operand(inst.src)} to {inst.type}"
    if isinstance(inst, Alloca):
        return f"{inst.ref} = alloca {inst.allocated_type}"
    if isinstance(inst, Load):
        return f"{inst.ref} = load {_operand(inst.pointer)}"
    if isinstance(inst, Store):
        return f"store {_operand(inst.value)}, {_operand(inst.pointer)}"
    if isinstance(inst, GetElementPtr):
        parts = ", ".join(_operand(i) for i in inst.indices)
        return f"{inst.ref} = getelementptr {_operand(inst.pointer)}, {parts}"
    if isinstance(inst, Branch):
        if inst.is_conditional:
            return (
                f"br i1 {inst.condition.ref}, label %{inst.true_target.name}, "
                f"label %{inst.false_target.name}"
            )
        return f"br label %{inst.true_target.name}"
    if isinstance(inst, Ret):
        if inst.return_value is None:
            return "ret void"
        return f"ret {_operand(inst.return_value)}"
    if isinstance(inst, Phi):
        pairs = ", ".join(f"[ {v.ref}, %{b.name} ]" for v, b in inst.incoming)
        return f"{inst.ref} = phi {inst.type} {pairs}"
    if isinstance(inst, Call):
        args = ", ".join(_operand(a) for a in inst.operands)
        prefix = f"{inst.ref} = " if inst.produces_value else ""
        return f"{prefix}call {inst.type} @{inst.callee}({args})"
    raise TypeError(f"cannot print instruction {inst!r}")


def print_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    lines.extend(f"  {print_instruction(i)}" for i in block.instructions)
    return "\n".join(lines)


def print_function(func: Function) -> str:
    args = ", ".join(f"{a.type} %{a.name}" for a in func.args)
    header = f"define {func.return_type} @{func.name}({args}) {{"
    body = "\n".join(print_block(b) for b in func.blocks)
    return f"{header}\n{body}\n}}"


def print_module(module: Module) -> str:
    return "\n\n".join(print_function(f) for f in module) + "\n"
