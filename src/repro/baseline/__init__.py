"""Aladdin-style trace-based comparator.

A faithful reimplementation of the trace-based pre-RTL methodology the
paper critiques: instrument a functional execution to produce a dynamic
LLVM instruction trace (written to a real trace file, as Aladdin does),
reverse-engineer a datapath from the trace's exposed parallelism, and
schedule the trace to estimate cycles and power.  `gem5_aladdin`
couples the schedule to a cache/SPM timing model, reproducing the
pathologies of Tables I and II: the derived datapath changes with input
data and with memory configuration.
"""

from repro.baseline.tracer import generate_trace, TraceFile
from repro.baseline.datapath import TraceDatapath, build_datapath
from repro.baseline.trace_sim import TraceSimResult, simulate_trace
from repro.baseline.gem5_aladdin import AladdinMemoryModel, CacheModel, SPMModel

__all__ = [
    "generate_trace",
    "TraceFile",
    "TraceDatapath",
    "build_datapath",
    "TraceSimResult",
    "simulate_trace",
    "AladdinMemoryModel",
    "CacheModel",
    "SPMModel",
]
