"""Hardware profile and FU-class mapping."""

import pytest

from repro.frontend import compile_c
from repro.hw.default_profile import default_profile
from repro.hw.profile import (
    FU_NONE,
    FunctionalUnitSpec,
    HardwareProfile,
    fu_class_for,
)
from repro.ir.instructions import (
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Select,
    Store,
)
from repro.ir.module import BasicBlock
from repro.ir.types import DOUBLE, I1, I32, I64, ptr_to
from repro.ir.values import Constant


def c32(v):
    return Constant(I32, v)


def cd(v):
    return Constant(DOUBLE, v)


@pytest.mark.parametrize(
    "make,expected",
    [
        (lambda: BinaryOp("fadd", cd(1), cd(2)), "fp_add"),
        (lambda: BinaryOp("fsub", cd(1), cd(2)), "fp_add"),
        (lambda: BinaryOp("fmul", cd(1), cd(2)), "fp_mul"),
        (lambda: BinaryOp("fdiv", cd(1), cd(2)), "fp_div"),
        (lambda: BinaryOp("add", c32(1), c32(2)), "int_add"),
        (lambda: BinaryOp("mul", c32(1), c32(2)), "int_mul"),
        (lambda: BinaryOp("sdiv", c32(1), c32(2)), "int_div"),
        (lambda: BinaryOp("and", c32(1), c32(2)), "bitwise"),
        (lambda: BinaryOp("shl", c32(1), c32(2)), "shifter"),
        (lambda: ICmp("slt", c32(1), c32(2)), "int_add"),
        (lambda: FCmp("olt", cd(1), cd(2)), "fp_cmp"),
        (lambda: Select(Constant(I1, 1), c32(1), c32(2)), "mux"),
        (lambda: Cast("sitofp", c32(1), DOUBLE), "converter"),
        (lambda: Cast("sext", c32(1), I64), FU_NONE),
        (lambda: Load(Constant(ptr_to(I32), 0)), FU_NONE),
        (lambda: Store(c32(1), Constant(ptr_to(I32), 0)), FU_NONE),
        (lambda: Branch(BasicBlock("b")), FU_NONE),
        (lambda: GetElementPtr(Constant(ptr_to(I32), 0), [Constant(I64, 1)]), "int_add"),
        (lambda: Call("sqrt", DOUBLE, [cd(4.0)]), "fp_special"),
        (lambda: Call("fmin", DOUBLE, [cd(1.0), cd(2.0)]), "fp_cmp"),
    ],
)
def test_fu_class_mapping(make, expected):
    assert fu_class_for(make()) == expected


def test_default_profile_covers_all_classes():
    profile = default_profile()
    module = compile_c(
        """
        double k(double a, double b, int i, int j) {
          double x = a * b + a / b - sqrt(a);
          int y = (i * j) / (i + 1) ^ (j << 2);
          return x + y + (i > j ? a : b);
        }
        """,
        "k",
    )
    for inst in module.get_function("k").instructions():
        fu_class = fu_class_for(inst)
        if fu_class != FU_NONE:
            spec = profile.spec_for(fu_class)
            assert spec.latency >= 0
            assert spec.area_um2 > 0
            assert spec.dynamic_energy_pj > 0


def test_fp_units_are_three_stage():
    profile = default_profile()
    assert profile.spec_for("fp_add").latency == 3
    assert profile.spec_for("fp_mul").latency == 3
    assert profile.spec_for("fp_div").latency > profile.spec_for("fp_mul").latency
    assert not profile.spec_for("fp_div").pipelined


def test_unknown_class_raises():
    profile = default_profile()
    with pytest.raises(KeyError):
        profile.spec_for("warp_drive")


def test_spec_for_none_is_none():
    assert default_profile().spec_for(FU_NONE) is None


def test_with_unit_override():
    profile = default_profile()
    fast_add = FunctionalUnitSpec("fp_add", latency=1, area_um2=1.0,
                                  leakage_mw=0.1, dynamic_energy_pj=1.0)
    modified = profile.with_unit(fast_add)
    assert modified.spec_for("fp_add").latency == 1
    assert profile.spec_for("fp_add").latency == 3  # original untouched


def test_with_latency():
    spec = default_profile().spec_for("fp_add")
    assert spec.with_latency(5).latency == 5
    assert spec.latency == 3
