"""Pipeline trace tooling."""

import numpy as np

from repro.core.debug import PipelineTrace, attach_trace
from repro.system.soc import StandaloneAccelerator

SRC = """
void axpy(double x[8], double y[8]) {
  for (int i = 0; i < 8; i++) { y[i] = 2.0 * x[i] + y[i]; }
}
"""


def _traced_run(rng):
    acc = StandaloneAccelerator(SRC, "axpy", spm_bytes=1 << 12)
    trace = attach_trace(acc.unit.engine)
    x, y = rng.uniform(-1, 1, 8), rng.uniform(-1, 1, 8)
    px, py = acc.alloc_array(x), acc.alloc_array(y)
    acc.run([px, py])
    out = acc.read_array(py, np.float64, 8)
    assert np.allclose(out, 2 * x + y)
    return trace, acc


def test_every_issue_gets_a_commit(rng):
    trace, acc = _traced_run(rng)
    issued = {e.seq for e in trace.events if e.kind == "issue"}
    committed = {e.seq for e in trace.events if e.kind == "commit"}
    assert issued and issued == committed


def test_commit_never_precedes_issue(rng):
    trace, __ = _traced_run(rng)
    for seq in {e.seq for e in trace.events}:
        issue, commit = trace.lifetime(seq)
        assert issue is not None and commit is not None
        assert commit >= issue


def test_fp_latency_visible_in_trace(rng):
    trace, acc = _traced_run(rng)
    fadd_latency = acc.profile.spec_for("fp_add").latency
    fadds = [e.seq for e in trace.events if e.opcode == "fadd" and e.kind == "issue"]
    assert fadds
    for seq in fadds:
        issue, commit = trace.lifetime(seq)
        assert commit - issue == fadd_latency


def test_memory_issues_carry_addresses(rng):
    trace, __ = _traced_run(rng)
    loads = [e for e in trace.events if e.opcode == "load" and e.kind == "issue"]
    assert loads and all("addr=0x" in e.detail for e in loads)


def test_log_and_waterfall_render(rng):
    trace, __ = _traced_run(rng)
    text = trace.log_text(limit=20)
    assert "issue" in text and "commit" in text
    art = trace.waterfall(max_rows=16)
    assert "=" in art and "load" in art


def test_trace_truncation():
    trace = PipelineTrace(max_events=2)
    for i in range(5):
        trace.record(i, "issue", i, "add")
    assert len(trace.events) == 2
    assert trace.truncated
    assert "truncated" in trace.log_text()


def test_truncation_counts_dropped_events():
    trace = PipelineTrace(max_events=3)
    for i in range(10):
        trace.record(i, "issue", i, "add")
    assert trace.dropped == 7
    assert "7 events dropped" in trace.log_text()


def test_per_cycle_index_matches_linear_scan(rng):
    trace, __ = _traced_run(rng)
    cycles = {e.cycle for e in trace.events}
    for cycle in list(sorted(cycles))[:50]:
        expected_issues = [e for e in trace.events
                           if e.kind == "issue" and e.cycle == cycle]
        expected_commits = [e for e in trace.events
                            if e.kind == "commit" and e.cycle == cycle]
        assert trace.issues_at(cycle) == expected_issues
        assert trace.commits_at(cycle) == expected_commits


def test_issues_and_commits_at_empty_cycle():
    trace = PipelineTrace()
    trace.record(5, "issue", 0, "add")
    assert trace.issues_at(5) and not trace.issues_at(6)
    assert trace.commits_at(5) == []
