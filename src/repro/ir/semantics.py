"""Pure evaluation semantics shared by the interpreter and the runtime engine.

Integer values are N-bit unsigned bit patterns (Python ints in
[0, 2^N)); signedness is interpreted per-opcode, matching LLVM.  Float
values are Python floats; binary32 results are rounded through struct
packing so ``float`` kernels behave like real hardware.
"""

from __future__ import annotations

import math
import struct

from repro.ir.instructions import GetElementPtr
from repro.ir.types import ArrayType, FloatType, IntType, PointerType, Type
from repro.ir.values import Value


class EvalError(RuntimeError):
    """Raised on undefined or unsupported evaluation."""


def wrap_int(value: int, type_: IntType) -> int:
    return value & type_.mask


def to_signed(value: int, type_: IntType) -> int:
    value &= type_.mask
    if value > type_.max_signed:
        return value - (1 << type_.bits)
    return value


_FLOAT32_MAX = 3.4028235677973366e38  # largest double that rounds into binary32


def round_float(value: float, type_: FloatType) -> float:
    if type_.bits == 32:
        if value != value or value in (math.inf, -math.inf):
            return value
        if value > _FLOAT32_MAX:
            return math.inf  # overflow rounds to infinity, as in IEEE 754
        if value < -_FLOAT32_MAX:
            return -math.inf
        return struct.unpack("<f", struct.pack("<f", value))[0]
    return float(value)


# ----------------------------------------------------------------------
# Binary operations
# ----------------------------------------------------------------------
def eval_binop(opcode: str, type_: Type, a, b):
    if isinstance(type_, FloatType):
        return _eval_float_binop(opcode, type_, a, b)
    if isinstance(type_, IntType):
        return _eval_int_binop(opcode, type_, a, b)
    raise EvalError(f"binary op {opcode} on unsupported type {type_}")


def _eval_float_binop(opcode: str, type_: FloatType, a: float, b: float) -> float:
    if opcode == "fadd":
        result = a + b
    elif opcode == "fsub":
        result = a - b
    elif opcode == "fmul":
        result = a * b
    elif opcode == "fdiv":
        result = math.inf if b == 0 and a > 0 else (-math.inf if b == 0 and a < 0 else (math.nan if b == 0 else a / b))
    elif opcode == "frem":
        result = math.fmod(a, b) if b != 0 else math.nan
    else:
        raise EvalError(f"unknown float binop '{opcode}'")
    return round_float(result, type_)


def _eval_int_binop(opcode: str, type_: IntType, a: int, b: int) -> int:
    sa, sb = to_signed(a, type_), to_signed(b, type_)
    if opcode == "add":
        return wrap_int(a + b, type_)
    if opcode == "sub":
        return wrap_int(a - b, type_)
    if opcode == "mul":
        return wrap_int(a * b, type_)
    if opcode == "sdiv":
        if sb == 0:
            raise EvalError("sdiv by zero")
        return wrap_int(int(sa / sb), type_)  # trunc toward zero
    if opcode == "udiv":
        if b == 0:
            raise EvalError("udiv by zero")
        return wrap_int(a // b, type_)
    if opcode == "srem":
        if sb == 0:
            raise EvalError("srem by zero")
        return wrap_int(sa - int(sa / sb) * sb, type_)
    if opcode == "urem":
        if b == 0:
            raise EvalError("urem by zero")
        return wrap_int(a % b, type_)
    if opcode == "and":
        return a & b
    if opcode == "or":
        return a | b
    if opcode == "xor":
        return a ^ b
    if opcode == "shl":
        return wrap_int(a << (b % type_.bits), type_) if b < type_.bits else 0
    if opcode == "lshr":
        return a >> b if b < type_.bits else 0
    if opcode == "ashr":
        return wrap_int(sa >> b, type_) if b < type_.bits else wrap_int(sa >> (type_.bits - 1), type_)
    raise EvalError(f"unknown int binop '{opcode}'")


# ----------------------------------------------------------------------
# Comparisons
# ----------------------------------------------------------------------
def eval_icmp(pred: str, type_: Type, a: int, b: int) -> int:
    if isinstance(type_, IntType):
        sa, sb = to_signed(a, type_), to_signed(b, type_)
    else:  # pointer compare is unsigned
        sa, sb = a, b
    table = {
        "eq": a == b,
        "ne": a != b,
        "slt": sa < sb,
        "sle": sa <= sb,
        "sgt": sa > sb,
        "sge": sa >= sb,
        "ult": a < b,
        "ule": a <= b,
        "ugt": a > b,
        "uge": a >= b,
    }
    if pred not in table:
        raise EvalError(f"unknown icmp predicate '{pred}'")
    return 1 if table[pred] else 0


def eval_fcmp(pred: str, a: float, b: float) -> int:
    unordered = math.isnan(a) or math.isnan(b)
    if pred == "ord":
        return 0 if unordered else 1
    if pred == "uno":
        return 1 if unordered else 0
    ordered_table = {
        "oeq": a == b,
        "one": a != b and not unordered,
        "olt": a < b,
        "ole": a <= b,
        "ogt": a > b,
        "oge": a >= b,
    }
    if pred in ordered_table:
        return 1 if (not unordered and ordered_table[pred]) else 0
    unordered_table = {"ueq": a == b, "une": a != b}
    if pred in unordered_table:
        return 1 if (unordered or unordered_table[pred]) else 0
    raise EvalError(f"unknown fcmp predicate '{pred}'")


# ----------------------------------------------------------------------
# Casts
# ----------------------------------------------------------------------
def eval_cast(opcode: str, from_type: Type, to_type: Type, value):
    if opcode == "zext":
        return value & to_type.mask
    if opcode == "sext":
        return wrap_int(to_signed(value, from_type), to_type)
    if opcode == "trunc":
        return value & to_type.mask
    if opcode == "fptosi":
        if math.isnan(value) or math.isinf(value):
            return 0
        return wrap_int(int(value), to_type)
    if opcode == "fptoui":
        if math.isnan(value) or math.isinf(value) or value < 0:
            return 0
        return wrap_int(int(value), to_type)
    if opcode == "sitofp":
        return round_float(float(to_signed(value, from_type)), to_type)
    if opcode == "uitofp":
        return round_float(float(value), to_type)
    if opcode == "fpext":
        return float(value)
    if opcode == "fptrunc":
        return round_float(value, to_type)
    if opcode == "bitcast":
        return _bitcast(from_type, to_type, value)
    if opcode == "inttoptr":
        return value & ((1 << 64) - 1)
    if opcode == "ptrtoint":
        return wrap_int(value, to_type)
    raise EvalError(f"unknown cast '{opcode}'")


def _bitcast(from_type: Type, to_type: Type, value):
    if from_type.is_pointer and to_type.is_pointer:
        return value
    fmt_of = {32: ("<I", "<f"), 64: ("<Q", "<d")}
    if from_type.is_float and to_type.is_int:
        int_fmt, float_fmt = fmt_of[from_type.bit_width()]
        return struct.unpack(int_fmt, struct.pack(float_fmt, value))[0]
    if from_type.is_int and to_type.is_float:
        int_fmt, float_fmt = fmt_of[to_type.bit_width()]
        return struct.unpack(float_fmt, struct.pack(int_fmt, value))[0]
    if from_type.is_int and to_type.is_int and from_type.bit_width() == to_type.bit_width():
        return value
    raise EvalError(f"unsupported bitcast {from_type} -> {to_type}")


# ----------------------------------------------------------------------
# Intrinsics and GEP
# ----------------------------------------------------------------------
def eval_intrinsic(callee: str, type_: Type, args: list):
    handlers = {
        "sqrt": lambda a: math.sqrt(a[0]) if a[0] >= 0 else math.nan,
        "fabs": lambda a: abs(a[0]),
        "exp": lambda a: math.exp(a[0]),
        "log": lambda a: math.log(a[0]) if a[0] > 0 else (-math.inf if a[0] == 0 else math.nan),
        "sin": lambda a: math.sin(a[0]),
        "cos": lambda a: math.cos(a[0]),
        "pow": lambda a: math.pow(a[0], a[1]),
        "fmin": lambda a: min(a),
        "fmax": lambda a: max(a),
    }
    if callee not in handlers:
        raise EvalError(f"unknown intrinsic '{callee}'")
    result = handlers[callee](args)
    if isinstance(type_, FloatType):
        result = round_float(result, type_)
    return result


def gep_address(gep: GetElementPtr, base_addr: int, index_values: list[int]) -> int:
    """Compute the byte address of a ``getelementptr``.

    ``index_values`` are the evaluated (signed) index operands in order.
    """
    current: Type = gep.pointer.type
    addr = base_addr
    for i, idx in enumerate(index_values):
        if i == 0:
            assert isinstance(current, PointerType)
            stride = current.pointee.size_bytes()
            current = current.pointee
        else:
            if not isinstance(current, ArrayType):
                raise EvalError(f"gep index into non-array type {current}")
            stride = current.element.size_bytes()
            current = current.element
        addr += stride * idx
    return addr & ((1 << 64) - 1)


def signed_operand(value, type_: Type):
    """Interpret a raw operand value as signed when it is an integer."""
    if isinstance(type_, IntType):
        return to_signed(value, type_)
    return value


# ----------------------------------------------------------------------
# Byte conversion (memory <-> register values)
# ----------------------------------------------------------------------
def value_to_bytes(value, type_: Type) -> bytes:
    if isinstance(type_, IntType):
        return int(value & type_.mask).to_bytes(type_.size_bytes(), "little")
    if isinstance(type_, FloatType):
        fmt = "<f" if type_.bits == 32 else "<d"
        return struct.pack(fmt, value)
    if isinstance(type_, PointerType):
        return int(value).to_bytes(8, "little")
    raise EvalError(f"cannot serialize type {type_}")


def bytes_to_value(data: bytes, type_: Type):
    if isinstance(type_, IntType):
        return int.from_bytes(data[: type_.size_bytes()], "little") & type_.mask
    if isinstance(type_, FloatType):
        fmt = "<f" if type_.bits == 32 else "<d"
        return struct.unpack(fmt, data[: type_.size_bytes()])[0]
    if isinstance(type_, PointerType):
        return int.from_bytes(data[:8], "little")
    raise EvalError(f"cannot deserialize type {type_}")
