"""SimObject base class and the top-level System container.

Every modelled hardware component derives from :class:`SimObject`, which
ties together a name, the shared event queue, a clock domain, and a stat
group.  :class:`System` owns the event queue, the registry of objects,
and the address map used to route packets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.clock import ClockDomain, ClockedObject
from repro.sim.eventq import EventQueue
from repro.sim.stats import StatGroup, format_stats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.trace.hub import TraceHub


class AddrRange:
    """A half-open address interval [start, end)."""

    __slots__ = ("start", "end")

    def __init__(self, start: int, size: int) -> None:
        if size <= 0:
            raise ValueError(f"address range size must be positive, got {size}")
        self.start = start
        self.end = start + size

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.start <= addr and addr + size <= self.end

    def overlaps(self, other: "AddrRange") -> bool:
        return self.start < other.end and other.start < self.end

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"[{self.start:#x}, {self.end:#x})"


class SimObject(ClockedObject):
    """Base class for all modelled components."""

    def __init__(self, name: str, system: "System", clock: Optional[ClockDomain] = None) -> None:
        super().__init__(system.eventq, clock or system.clock)
        self.name = name
        self.system = system
        self.stats = StatGroup(name)
        # Trace hub, or None when untraced.  Hot paths guard on this one
        # attribute, so a detached simulation pays a single pointer
        # compare per instrumentation site.
        self._thub: Optional["TraceHub"] = None
        # Fault injector, or None when no faults target this object.
        # Same contract as _thub: a fault-free simulation pays a single
        # pointer compare per hook site and stays cycle-identical.
        self._finj = None
        # Access sanitizer, or None when the run is unsanitized.  Same
        # zero-overhead contract as _thub/_finj.
        self._san = None
        system.register(self)

    def init(self) -> None:
        """Called once after the full system is wired, before simulation."""

    def trace_emit(self, channel: str, kind: str, dur: int = 0,
                   args: Optional[dict] = None) -> None:
        """Emit a trace event at the current tick; no-op when untraced."""
        hub = self._thub
        if hub is not None:
            hub.emit(channel, self.name, kind, self.eventq.cur_tick, dur, args)

    def reset(self) -> None:
        """Tear down run state so the object can simulate again.

        The base implementation clears statistics; objects with internal
        queues or in-flight transactions override and chain up.
        """
        self.reset_stats()

    def reset_stats(self) -> None:
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class System:
    """Top-level container: event queue, clocks, object registry."""

    def __init__(self, name: str = "system", clock_freq_hz: float = 1e9) -> None:
        self.name = name
        self.eventq = EventQueue(name)
        self.clock = ClockDomain(f"{name}.clk", clock_freq_hz)
        self.objects: dict[str, SimObject] = {}
        self.trace_hub: Optional["TraceHub"] = None
        self.sanitizer = None
        self._initialized = False

    def register(self, obj: SimObject) -> None:
        if obj.name in self.objects:
            raise ValueError(f"duplicate SimObject name '{obj.name}'")
        self.objects[obj.name] = obj
        # Late registrations on a traced system pick the hub up here.
        obj._thub = self.trace_hub
        obj._san = self.sanitizer

    # -- tracing ------------------------------------------------------------
    def attach_trace_hub(self, hub: "TraceHub") -> "TraceHub":
        """Route every registered object's trace events into ``hub``.

        Also hooks the event queue so fired kernel events appear on the
        ``sched`` channel.  Objects registered after attachment inherit
        the hub; :meth:`detach_trace_hub` restores the no-op state.
        """
        self.trace_hub = hub
        for obj in self.objects.values():
            obj._thub = hub
        if hub.enabled("sched"):
            queue_name = self.eventq.name
            self.eventq.trace_hook = (
                lambda event, tick: hub.emit("sched", queue_name, event.name, tick)
            )
        return hub

    def detach_trace_hub(self) -> None:
        self.trace_hub = None
        for obj in self.objects.values():
            obj._thub = None
        self.eventq.trace_hook = None

    # -- sanitizing ---------------------------------------------------------
    def attach_sanitizer(self, sanitizer):
        """Route every registered object's access records into ``sanitizer``.

        Objects registered after attachment inherit the sanitizer;
        :meth:`detach_sanitizer` restores the no-op state.
        """
        self.sanitizer = sanitizer
        for obj in self.objects.values():
            obj._san = sanitizer
        return sanitizer

    def detach_sanitizer(self) -> None:
        self.sanitizer = None
        for obj in self.objects.values():
            obj._san = None

    def __getitem__(self, name: str) -> SimObject:
        return self.objects[name]

    def init_all(self) -> None:
        for obj in self.objects.values():
            obj.init()
        self._initialized = True

    def run(self, max_tick: Optional[int] = None, max_events: Optional[int] = None,
            watchdog=None) -> str:
        """Initialise (once) and drain the event queue.

        ``watchdog`` (optional) monitors the run for deadlock/livelock/
        wall-clock overruns; see :meth:`EventQueue.run`.
        """
        if not self._initialized:
            self.init_all()
        return self.eventq.run(max_tick=max_tick, max_events=max_events,
                               watchdog=watchdog)

    @property
    def cur_tick(self) -> int:
        return self.eventq.cur_tick

    def dump_stats(self) -> dict:
        merged: dict = {}
        for obj in self.objects.values():
            merged.update(obj.stats.dump())
        return merged

    def stats_report(self) -> str:
        return format_stats(self.dump_stats(), title=self.name)

    def reset_stats(self) -> None:
        for obj in self.objects.values():
            obj.reset_stats()

    def reset(self) -> None:
        """Tear down run state so the system can be reused.

        Clears the event queue (pending events, current tick, any stale
        exit cause), resets every registered object, and re-arms
        :meth:`init_all` for the next :meth:`run`.
        """
        self.eventq.reset()
        for obj in self.objects.values():
            obj.reset()
        self._initialized = False
