"""Discrete-event simulation kernel.

This subpackage stands in for the gem5 simulation framework: a global
event queue ordered by tick, clock domains, ``SimObject`` base classes
with statistics registration, and a master/slave port abstraction with
timing packets.  Every other subsystem (memories, DMAs, accelerators,
the host agent) is built on these primitives.
"""

from repro.sim.eventq import Event, EventQueue
from repro.sim.clock import ClockDomain, ClockedObject
from repro.sim.simobject import SimObject, System
from repro.sim.packet import MemCmd, Packet
from repro.sim.ports import MasterPort, SlavePort
from repro.sim.stats import Stat, ScalarStat, VectorStat, StatGroup

__all__ = [
    "Event",
    "EventQueue",
    "ClockDomain",
    "ClockedObject",
    "SimObject",
    "System",
    "MemCmd",
    "Packet",
    "MasterPort",
    "SlavePort",
    "Stat",
    "ScalarStat",
    "VectorStat",
    "StatGroup",
]
