"""Fallback rules: a graph request degrades to dynamic — never errors —
whenever a feature the graph backend does not model is active, and the
degraded run behaves exactly like an explicit dynamic run."""

import json

import pytest

from repro.exec.context import SimContext
from repro.workloads import get_workload


def _graph_ctx(**kwargs):
    kwargs.setdefault("memory", "spm")
    return SimContext(get_workload("gemm"), seed=7, verify=False,
                      engine="graph", **kwargs)


def test_fault_injection_falls_back():
    ctx = _graph_ctx(faults="port_stall@memctrl:tick=50000,cycles=300")
    ctx.run()
    assert ctx.engine_used == "dynamic"
    assert "fault" in ctx.fallback_reason


def test_watchdog_falls_back():
    ctx = _graph_ctx(watchdog=True)
    ctx.run()
    assert ctx.engine_used == "dynamic"
    assert "watchdog" in ctx.fallback_reason


def test_timeout_falls_back():
    # timeout_s is implemented as a wall-clock watchdog.
    ctx = _graph_ctx(timeout_s=60.0)
    ctx.run()
    assert ctx.engine_used == "dynamic"
    assert "watchdog" in ctx.fallback_reason


def test_max_events_budget_falls_back():
    ctx = _graph_ctx(max_events=10**9)
    ctx.run()
    assert ctx.engine_used == "dynamic"
    assert "max_events" in ctx.fallback_reason


def test_cache_memory_falls_back():
    ctx = _graph_ctx(memory="cache")
    ctx.run()
    assert ctx.engine_used == "dynamic"
    assert "memory" in ctx.fallback_reason


def test_fallback_run_identical_to_explicit_dynamic():
    degraded = _graph_ctx(watchdog=True)
    first = degraded.run()
    explicit = SimContext(get_workload("gemm"), seed=7, verify=False,
                          engine="dynamic", memory="spm", watchdog=True)
    second = explicit.run()
    assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())


def test_honoured_request_reports_no_reason():
    ctx = _graph_ctx()
    ctx.run()
    assert ctx.engine_used == "graph"
    assert ctx.fallback_reason is None


def test_dynamic_request_never_reports_fallback():
    ctx = SimContext(get_workload("gemm"), seed=7, verify=False,
                     engine="dynamic", memory="spm")
    ctx.run()
    assert ctx.engine_used == "dynamic"
    assert ctx.fallback_reason is None


def test_unknown_engine_rejected():
    ctx = SimContext(get_workload("gemm"), seed=7, verify=False,
                     engine="warp", memory="spm")
    with pytest.raises(ValueError, match="engine"):
        ctx.build()
