"""AST node definitions for the mini-C dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class CType:
    """A C type: base name, pointer depth, and array dimensions."""

    base: str  # 'void' | 'char' | 'short' | 'int' | 'long' | 'float' | 'double'
    unsigned: bool = False
    pointers: int = 0
    array_dims: list[int] = field(default_factory=list)

    def __str__(self) -> str:
        text = ("unsigned " if self.unsigned else "") + self.base + "*" * self.pointers
        for dim in self.array_dims:
            text += f"[{dim}]"
        return text


# --- expressions --------------------------------------------------------
@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0
    is_single: bool = False


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class BinOp(Expr):
    op: str = ""
    lhs: Expr = None
    rhs: Expr = None


@dataclass
class UnOp(Expr):
    op: str = ""  # '-', '!', '~', '*', '&'
    operand: Expr = None


@dataclass
class Assign(Expr):
    op: str = "="  # '=', '+=', ...
    target: Expr = None
    value: Expr = None


@dataclass
class IncDec(Expr):
    op: str = "++"
    target: Expr = None
    prefix: bool = False


@dataclass
class Conditional(Expr):
    cond: Expr = None
    if_true: Expr = None
    if_false: Expr = None


@dataclass
class CallExpr(Expr):
    callee: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class IndexExpr(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class CastExpr(Expr):
    to_type: CType = None
    operand: Expr = None


# --- statements -----------------------------------------------------------
@dataclass
class Stmt:
    line: int = 0


@dataclass
class VarDecl(Stmt):
    type: CType = None
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class Compound(Stmt):
    body: list[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Stmt = None
    otherwise: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None
    unroll: Optional[int] = None  # None: no pragma, 0: full, N: factor


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Stmt = None
    unroll: Optional[int] = None


@dataclass
class DoWhile(Stmt):
    body: Stmt = None
    cond: Expr = None
    unroll: Optional[int] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --- top level ---------------------------------------------------------------
@dataclass
class Param:
    type: CType
    name: str


@dataclass
class FunctionDef:
    name: str
    return_type: CType
    params: list[Param]
    body: Compound
    line: int = 0


@dataclass
class TranslationUnit:
    functions: list[FunctionDef] = field(default_factory=list)
