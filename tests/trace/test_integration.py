"""Tracing across the stack: exec layer, sweeps, CNN platform, CLI.

The acceptance bar from the issue: tracing is a pure observer (cycle
counts unchanged, never part of a cache key), parallel sweeps stay
byte-identical with tracing on, and a CNN scenario produces a
Perfetto-loadable Chrome trace with compute, mem, and dma events on a
consistent timeline.
"""

import json

import pytest

from repro.core.config import DeviceConfig
from repro.exec import ParallelSweep, RunCache, SimContext
from repro.system.soc import RunResult
from repro.trace import TraceConfig, chrome_trace, to_chrome_json
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def workload():
    return get_workload("gemm_dse")


def _configure(params):
    return dict(
        config=DeviceConfig(read_ports=2, write_ports=2),
        memory="spm",
        spm_bytes=1 << 15,
        unroll_factor=params["unroll"],
    )


# -- zero-overhead acceptance ----------------------------------------------
def test_tracing_does_not_change_cycles(workload):
    plain = SimContext(workload).run()
    traced_ctx = SimContext(workload, trace=True)
    traced = traced_ctx.run()
    assert traced.cycles == plain.cycles
    assert traced.runtime_ns == plain.runtime_ns
    assert traced_ctx.trace_hub is not None
    assert traced_ctx.trace_hub.total_emitted > 0


def test_untraced_context_attaches_nothing(workload):
    ctx = SimContext(workload)
    ctx.run()
    assert ctx.trace_hub is None
    assert ctx.accelerator.system.trace_hub is None
    assert ctx.last_result.trace_summary is None


# -- RunResult / cache semantics -------------------------------------------
def test_trace_summary_rides_run_result(workload):
    ctx = SimContext(workload, trace="compute,mem")
    result = ctx.run()
    summary = result.trace_summary
    assert summary["channels"] == ["compute", "mem"]
    assert summary["emitted"]["compute"] > 0
    clone = RunResult.from_dict(result.to_dict())
    assert clone.trace_summary == summary


def test_trace_is_not_part_of_cache_key(workload):
    plain = SimContext(workload)
    traced = SimContext(workload, trace=True)
    assert plain.cache_key() == traced.cache_key()


def test_cache_hit_skips_tracing(workload):
    cache = RunCache()
    SimContext(workload, cache=cache).run()
    ctx = SimContext(workload, cache=cache, trace=True)
    result = ctx.run()
    assert cache.hits == 1
    # The hit skipped simulation entirely: no hub was ever built.
    assert ctx.trace_hub is None
    assert result.trace_summary is None


def test_context_reset_detaches_hub(workload):
    ctx = SimContext(workload, trace=True)
    ctx.run()
    first = ctx.trace_hub
    assert first is not None and first.total_emitted > 0
    ctx.reset()
    assert ctx.trace_hub is None
    ctx.run()
    # A fresh run gets a fresh hub; events are not mixed across runs.
    assert ctx.trace_hub is not first
    # The first run compiled the kernel (parse/lower/optimize land on
    # the 'build' channel); the reset run reuses the module, so every
    # *simulation* channel matches exactly and 'build' goes quiet.
    assert first.emitted["build"] > 0
    assert ctx.trace_hub.emitted["build"] == 0
    for channel, count in first.emitted.items():
        if channel != "build":
            assert ctx.trace_hub.emitted[channel] == count


# -- parallel sweeps --------------------------------------------------------
def test_traced_sweep_parallel_matches_serial(workload):
    grid = {"unroll": [1, 2]}
    rows = lambda pts: [json.dumps(p.record(), sort_keys=True) for p in pts]
    serial = ParallelSweep(workers=1, trace="compute").run(
        workload, grid, _configure, seed=7)
    parallel = ParallelSweep(workers=2, trace="compute").run(
        workload, grid, _configure, seed=7)
    assert rows(parallel) == rows(serial)
    for point in serial:
        assert point.result.trace_summary["emitted"]["compute"] > 0


def test_traced_and_untraced_sweeps_share_cache(workload):
    grid = {"unroll": [1]}
    cache = RunCache()
    ParallelSweep(workers=1, cache=cache).run(workload, grid, _configure, seed=7)
    ParallelSweep(workers=1, cache=cache, trace=True).run(
        workload, grid, _configure, seed=7)
    # Tracing never changes the key: the traced sweep is a pure cache hit.
    assert cache.hits == 1 and cache.misses == 1


# -- CNN platform acceptance ------------------------------------------------
def test_cnn_scenario_chrome_trace(tmp_path):
    from repro.system.cnn_scenarios import run_private_spm

    hub = TraceConfig(channels="compute,mem,dma,irq,host").make_hub()
    result = run_private_spm(seed=7, trace_hub=hub)
    assert result.verified

    emitted = hub.summary()["emitted"]
    for channel in ("compute", "mem", "dma", "irq", "host"):
        assert emitted[channel] > 0, f"no {channel} events"

    doc = json.loads(to_chrome_json(hub))
    events = doc["traceEvents"]
    categories = {e.get("cat") for e in events}
    assert {"compute", "mem", "dma"} <= categories
    # Schema: every event carries ph/ts/pid.
    for event in events:
        assert "ph" in event and "ts" in event and "pid" in event
    # Consistent timeline: every span fits inside the run's tick window.
    end_us = result.total_ns / 1e3
    for event in events:
        if event["ph"] == "M":
            continue
        assert 0 <= event["ts"] <= end_us + 1
        assert event["ts"] + event.get("dur", 0) <= end_us + 1

    # Three accelerators each have a compute track of their own.
    meta = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert {"conv.engine", "relu.engine", "pool.engine"} <= meta


def test_cnn_tracing_leaves_timing_unchanged():
    from repro.system.cnn_scenarios import run_private_spm

    plain = run_private_spm(seed=7)
    hub = TraceConfig().make_hub()
    traced = run_private_spm(seed=7, trace_hub=hub)
    assert traced.total_ns == plain.total_ns
    assert traced.acc_cycles == plain.acc_cycles


# -- CLI --------------------------------------------------------------------
def test_cli_run_trace_out(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "trace.json"
    assert main(["run", "gemm_dse", "--trace", "compute,mem",
                 "--trace-out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "trace written" in printed
    doc = json.loads(out.read_text())
    assert doc["traceEvents"]
    assert all("ph" in e and "ts" in e and "pid" in e
               for e in doc["traceEvents"])


def test_cli_run_trace_cache_hit_warns(tmp_path, capsys):
    from repro.cli import main

    cache_dir = str(tmp_path / "cache")
    assert main(["run", "gemm_dse", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert main(["run", "gemm_dse", "--cache-dir", cache_dir,
                 "--trace", "compute"]) == 0
    printed = capsys.readouterr().out
    assert "skipped (cache hit" in printed


def test_cli_rejects_unknown_channel(capsys):
    from repro.cli import main
    from repro.trace import TraceError

    with pytest.raises(TraceError):
        main(["run", "gemm_dse", "--trace", "bogus"])
