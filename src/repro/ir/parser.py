"""Parser for the textual IR dialect emitted by `repro.ir.printer`.

A hand-written tokenizer plus recursive descent.  Forward references to
basic blocks are resolved by pre-creating all labelled blocks; forward
references to SSA values are resolved by a post-pass fixup.  The latter
are legal in two shapes: phi incomings (loop-carried values) and plain
operands whose defining block is printed later but still dominates the
use — the printer emits blocks in insertion order, not a topological
order, so loop exits regularly read values defined further down.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.ir.builder import IRBuilder
from repro.ir.instructions import (
    BINOPS,
    CAST_OPS,
    FCMP_PREDS,
    ICMP_PREDS,
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import (
    FloatType,
    IntType,
    PointerType,
    Type,
    DOUBLE,
    FLOAT,
    I1,
    LABEL,
    VOID,
    array_of,
)
from repro.ir.values import Constant, Value


class IRParseError(ValueError):
    def __init__(self, message: str, line_no: Optional[int] = None) -> None:
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<ref>%[A-Za-z0-9_.\-]+)
  | (?P<glob>@[A-Za-z0-9_.\-]+)
  | (?P<num>-?(?:\d+\.\d*(?:e[+-]?\d+)?|\d+e[+-]?\d+|\d+|inf|nan))
  | (?P<word>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct>[=,()\[\]{}:*])
    """,
    re.VERBOSE,
)


def _tokenize(text: str, line_no: int) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise IRParseError(f"unexpected character {text[pos]!r}", line_no)
        if match.lastgroup != "ws":
            tokens.append(match.group())
        pos = match.end()
    return tokens


class _Cursor:
    def __init__(self, tokens: list[str], line_no: int) -> None:
        self.tokens = tokens
        self.pos = 0
        self.line_no = line_no

    def peek(self, offset: int = 0) -> Optional[str]:
        idx = self.pos + offset
        return self.tokens[idx] if idx < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise IRParseError("unexpected end of line", self.line_no)
        self.pos += 1
        return token

    def expect(self, token: str) -> str:
        got = self.next()
        if got != token:
            raise IRParseError(f"expected {token!r}, got {got!r}", self.line_no)
        return got

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.pos += 1
            return True
        return False

    def done(self) -> bool:
        return self.pos >= len(self.tokens)


def _parse_type(cur: _Cursor) -> Type:
    token = cur.next()
    if token == "[":
        count = int(cur.next())
        word = cur.next()
        if word != "x":
            raise IRParseError(f"expected 'x' in array type, got {word!r}", cur.line_no)
        element = _parse_type(cur)
        cur.expect("]")
        base: Type = array_of(element, count)
    elif token == "void":
        base = VOID
    elif token == "label":
        base = LABEL
    elif token == "float":
        base = FLOAT
    elif token == "double":
        base = DOUBLE
    elif token.startswith("i") and token[1:].isdigit():
        base = IntType(int(token[1:]))
    else:
        raise IRParseError(f"unknown type token {token!r}", cur.line_no)
    while cur.accept("*"):
        base = PointerType(base)
    return base


class _ForwardRef(Value):
    """Placeholder for a use of a value defined later in the text."""

    def __init__(self, type_: Type, token: str, line_no: int) -> None:
        super().__init__(type_)
        self.token = token
        self.line_no = line_no


class _FunctionParser:
    """Parses the body of one ``define``."""

    def __init__(self, func: Function, line_no: int) -> None:
        self.func = func
        self.values: dict[str, Value] = {f"%{a.name}": a for a in func.args}
        self.blocks: dict[str, BasicBlock] = {}
        self.phi_fixups: list[tuple[Phi, list[tuple[str, str]]]] = []
        self.forward_refs: list[_ForwardRef] = []
        self.label_order: list[BasicBlock] = []
        self.start_line = line_no

    def block(self, name: str) -> BasicBlock:
        if name not in self.blocks:
            block = BasicBlock(name, self.func)
            self.func.blocks.append(block)
            self.blocks[name] = block
        return self.blocks[name]

    def define(self, name: str, value: Value, line_no: int) -> None:
        if name in self.values:
            raise IRParseError(f"redefinition of {name}", line_no)
        self.values[name] = value

    def operand(self, type_: Type, token: str, cur: _Cursor) -> Value:
        if token.startswith("%"):
            if token not in self.values:
                ref = _ForwardRef(type_, token, cur.line_no)
                self.forward_refs.append(ref)
                return ref
            value = self.values[token]
            if value.type != type_:
                raise IRParseError(
                    f"operand {token} has type {value.type}, expected {type_}", cur.line_no
                )
            return value
        if token == "true":
            return Constant(I1, 1)
        if token == "false":
            return Constant(I1, 0)
        if token == "null":
            return Constant(type_, 0)
        try:
            if type_.is_float:
                return Constant(type_, float(token))
            return Constant(type_, int(token))
        except ValueError:
            raise IRParseError(f"bad constant {token!r} for type {type_}", cur.line_no)

    def typed_operand(self, cur: _Cursor) -> Value:
        type_ = _parse_type(cur)
        return self.operand(type_, cur.next(), cur)

    # ------------------------------------------------------------------
    def parse_line(self, line: str, line_no: int, current: Optional[BasicBlock]) -> BasicBlock:
        tokens = _tokenize(line, line_no)
        # Block label?
        if len(tokens) == 2 and tokens[1] == ":":
            block = self.block(tokens[0])
            self.label_order.append(block)
            return block
        if current is None:
            raise IRParseError("instruction before first block label", line_no)
        cur = _Cursor(tokens, line_no)
        name = ""
        if cur.peek() is not None and cur.peek().startswith("%") and cur.peek(1) == "=":
            name = cur.next()
            cur.expect("=")
        inst = self._parse_instruction(cur, name, current)
        if inst is not None:
            current.instructions.append(inst)
            inst.parent = current
            if inst.produces_value:
                inst.name = name[1:]
                self.define(name, inst, line_no)
        return current

    def _parse_instruction(self, cur: _Cursor, name: str, current: BasicBlock):
        op = cur.next()
        if op in BINOPS:
            type_ = _parse_type(cur)
            lhs = self.operand(type_, cur.next(), cur)
            cur.expect(",")
            rhs = self.operand(type_, cur.next(), cur)
            return BinaryOp(op, lhs, rhs)
        if op == "icmp":
            pred = cur.next()
            if pred not in ICMP_PREDS:
                raise IRParseError(f"bad icmp predicate {pred!r}", cur.line_no)
            type_ = _parse_type(cur)
            lhs = self.operand(type_, cur.next(), cur)
            cur.expect(",")
            rhs = self.operand(type_, cur.next(), cur)
            return ICmp(pred, lhs, rhs)
        if op == "fcmp":
            pred = cur.next()
            if pred not in FCMP_PREDS:
                raise IRParseError(f"bad fcmp predicate {pred!r}", cur.line_no)
            type_ = _parse_type(cur)
            lhs = self.operand(type_, cur.next(), cur)
            cur.expect(",")
            rhs = self.operand(type_, cur.next(), cur)
            return FCmp(pred, lhs, rhs)
        if op == "select":
            cur.expect("i1")
            cond = self.operand(I1, cur.next(), cur)
            cur.expect(",")
            tv = self.typed_operand(cur)
            cur.expect(",")
            fv = self.typed_operand(cur)
            return Select(cond, tv, fv)
        if op in CAST_OPS:
            src = self.typed_operand(cur)
            word = cur.next()
            if word != "to":
                raise IRParseError(f"expected 'to' in cast, got {word!r}", cur.line_no)
            return Cast(op, src, _parse_type(cur))
        if op == "alloca":
            return Alloca(_parse_type(cur))
        if op == "load":
            return Load(self.typed_operand(cur))
        if op == "store":
            value = self.typed_operand(cur)
            cur.expect(",")
            pointer = self.typed_operand(cur)
            return Store(value, pointer)
        if op == "getelementptr":
            pointer = self.typed_operand(cur)
            indices = []
            while cur.accept(","):
                indices.append(self.typed_operand(cur))
            return GetElementPtr(pointer, indices)
        if op == "br":
            if cur.accept("label"):
                target = self.block(cur.next()[1:])
                return Branch(target)
            cur.expect("i1")
            cond = self.operand(I1, cur.next(), cur)
            cur.expect(",")
            cur.expect("label")
            if_true = self.block(cur.next()[1:])
            cur.expect(",")
            cur.expect("label")
            if_false = self.block(cur.next()[1:])
            return Branch(if_true, cond=cond, if_false=if_false)
        if op == "ret":
            type_ = _parse_type(cur)
            if type_.is_void:
                return Ret()
            return Ret(self.operand(type_, cur.next(), cur))
        if op == "phi":
            type_ = _parse_type(cur)
            phi = Phi(type_)
            pairs: list[tuple[str, str]] = []
            while cur.accept("[") or cur.accept(","):
                if cur.peek() == "[":
                    cur.next()
                value_token = cur.next()
                cur.expect(",")
                block_token = cur.next()
                cur.expect("]")
                pairs.append((value_token, block_token[1:]))
            self.phi_fixups.append((phi, pairs))
            return phi
        if op == "call":
            return_type = _parse_type(cur)
            callee = cur.next()
            if not callee.startswith("@"):
                raise IRParseError(f"expected @callee, got {callee!r}", cur.line_no)
            cur.expect("(")
            args = []
            if cur.peek() != ")":
                args.append(self.typed_operand(cur))
                while cur.accept(","):
                    args.append(self.typed_operand(cur))
            cur.expect(")")
            return Call(callee[1:], return_type, args)
        raise IRParseError(f"unknown instruction '{op}'", cur.line_no)

    def finish(self) -> None:
        # Branch targets pre-create blocks at first *reference*; restore
        # textual label order so a parse -> print cycle is the identity.
        labelled = set(map(id, self.label_order))
        self.func.blocks[:] = self.label_order + [
            b for b in self.func.blocks if id(b) not in labelled
        ]
        if self.forward_refs:
            resolved: dict[_ForwardRef, Value] = {}
            for ref in self.forward_refs:
                if ref.token not in self.values:
                    raise IRParseError(
                        f"use of undefined value {ref.token}", ref.line_no)
                value = self.values[ref.token]
                if value.type != ref.type:
                    raise IRParseError(
                        f"operand {ref.token} has type {value.type}, "
                        f"expected {ref.type}", ref.line_no)
                resolved[ref] = value
            for inst in self.func.instructions():
                for i, op in enumerate(inst.operands):
                    if isinstance(op, _ForwardRef):
                        inst.operands[i] = resolved[op]
        for phi, pairs in self.phi_fixups:
            for value_token, block_name in pairs:
                if block_name not in self.blocks:
                    raise IRParseError(
                        f"phi references unknown block %{block_name}", self.start_line
                    )
                block = self.blocks[block_name]
                if value_token.startswith("%"):
                    if value_token not in self.values:
                        raise IRParseError(
                            f"phi references undefined value {value_token}", self.start_line
                        )
                    value = self.values[value_token]
                else:
                    cur = _Cursor([value_token], self.start_line)
                    value = self.operand(phi.type, value_token, cur)
                phi.add_incoming(value, block)


_DEFINE_RE = re.compile(r"^define\s+(?P<rest>.*)\{$")


def parse_module(text: str, name: str = "module") -> Module:
    module = Module(name)
    fparser: Optional[_FunctionParser] = None
    current: Optional[BasicBlock] = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith("define"):
            if fparser is not None:
                raise IRParseError("nested define", line_no)
            match = _DEFINE_RE.match(line)
            if match is None:
                raise IRParseError("malformed define line", line_no)
            cur = _Cursor(_tokenize(match.group("rest"), line_no), line_no)
            return_type = _parse_type(cur)
            fn_name = cur.next()
            if not fn_name.startswith("@"):
                raise IRParseError(f"expected @name, got {fn_name!r}", line_no)
            cur.expect("(")
            arg_specs = []
            if cur.peek() != ")":
                while True:
                    arg_type = _parse_type(cur)
                    arg_ref = cur.next()
                    arg_specs.append((arg_type, arg_ref[1:]))
                    if not cur.accept(","):
                        break
            cur.expect(")")
            func = Function(fn_name[1:], return_type, arg_specs)
            module.add_function(func)
            fparser = _FunctionParser(func, line_no)
            current = None
            continue
        if line == "}":
            if fparser is None:
                raise IRParseError("unmatched '}'", line_no)
            fparser.finish()
            fparser = None
            current = None
            continue
        if fparser is None:
            raise IRParseError(f"statement outside function: {line!r}", line_no)
        current = fparser.parse_line(line, line_no, current)
    if fparser is not None:
        raise IRParseError("unterminated function at end of input")
    return module
