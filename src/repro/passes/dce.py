"""Dead code elimination.

Removes value-producing instructions with no users and no side effects
(stores, calls to non-intrinsic functions, and terminators are roots).
Runs to a fixed point so whole dead expression trees vanish — e.g. the
induction arithmetic left behind by full loop unrolling.
"""

from __future__ import annotations

from repro.ir.instructions import Call, Phi, Store
from repro.ir.module import Function
from repro.ir.values import Instruction
from repro.passes.pass_manager import FunctionPass


def _has_side_effects(inst: Instruction) -> bool:
    if inst.is_terminator:
        return True
    if isinstance(inst, Store):
        return True
    if isinstance(inst, Call) and not inst.is_intrinsic:
        # Conservatively keep calls into other functions (they may store).
        return True
    return False


class DeadCodeElimination(FunctionPass):
    name = "dce"

    def run(self, func: Function) -> bool:
        changed_any = False
        while True:
            used: set[int] = set()
            for inst in func.instructions():
                for operand in inst.operands:
                    used.add(id(operand))
                if isinstance(inst, Phi):
                    for value, __ in inst.incoming:
                        used.add(id(value))
            dead = [
                inst
                for inst in func.instructions()
                if inst.produces_value
                and id(inst) not in used
                and not _has_side_effects(inst)
            ]
            if not dead:
                return changed_any
            for inst in dead:
                inst.parent.remove(inst)
            changed_any = True
