"""Loop-invariant code motion (LICM).

Hoists computations whose operands do not change across loop iterations
into the loop preheader.  For accelerator datapaths this removes
redundant per-iteration address arithmetic (e.g. ``i * N`` terms whose
factors are invariant in an inner loop), shrinking both the dynamic
instruction stream and, under 1-to-1 mapping, doing so without touching
the set of functional units the static CDFG allocates per class.

Only speculation-free instructions are hoisted: pure arithmetic,
comparisons, selects, casts, and address computation.  Loads/stores and
division (which can trap on data reached only under a guard) stay put.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.dominance import DominatorTree
from repro.ir.instructions import (
    BinaryOp,
    Branch,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Phi,
    Select,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Argument, Constant, Instruction, Value
from repro.passes.loop_analysis import Loop, find_loops
from repro.passes.pass_manager import FunctionPass

# Opcodes never hoisted even when invariant (may trap).
_TRAPPING = frozenset(["sdiv", "udiv", "srem", "urem"])


def _hoistable(inst: Instruction) -> bool:
    if isinstance(inst, (ICmp, FCmp, Select, Cast, GetElementPtr)):
        return True
    if isinstance(inst, BinaryOp):
        return inst.opcode not in _TRAPPING
    return False


class LoopInvariantCodeMotion(FunctionPass):
    name = "licm"

    def run(self, func: Function) -> bool:
        changed = False
        # Innermost-first so invariants bubble outward across runs.
        for loop in find_loops(func):
            changed |= self._hoist_loop(func, loop)
        return changed

    # ------------------------------------------------------------------
    def _hoist_loop(self, func: Function, loop: Loop) -> bool:
        preheader = self._find_preheader(func, loop)
        if preheader is None:
            return False
        in_loop = set(map(id, loop.blocks))
        dt = DominatorTree(func)

        invariant: set[int] = set()

        def operand_invariant(operand: Value) -> bool:
            if isinstance(operand, (Constant, Argument)):
                return True
            if isinstance(operand, Instruction):
                if id(operand) in invariant:
                    return True
                return operand.parent is not None and id(operand.parent) not in in_loop
            return False

        hoisted: list[Instruction] = []
        changed = True
        while changed:
            changed = False
            for block in loop.blocks:
                # Hoist only from blocks that execute every iteration
                # (dominate the latch): guarded code must not move.
                if not dt.dominates(block, loop.latch):
                    continue
                for inst in list(block.instructions):
                    if id(inst) in invariant or not _hoistable(inst):
                        continue
                    if all(operand_invariant(op) for op in inst.operands):
                        invariant.add(id(inst))
                        block.remove(inst)
                        hoisted.append(inst)
                        changed = True

        if not hoisted:
            return False
        # Insert before the preheader's terminator, preserving the
        # def-before-use order in which we discovered them.
        terminator_index = len(preheader.instructions) - 1
        for offset, inst in enumerate(hoisted):
            inst.parent = preheader
            preheader.instructions.insert(terminator_index + offset, inst)
        return True

    @staticmethod
    def _find_preheader(func: Function, loop: Loop) -> Optional[BasicBlock]:  # noqa: D401
        """The unique out-of-loop predecessor that unconditionally enters
        the header (the shape the frontend's rotated loops produce)."""
        pred_map = func.predecessor_map()
        outside = [
            pred for pred in pred_map.get(loop.header, ()) if pred not in loop.blocks
        ]
        if len(outside) != 1:
            return None
        pred = outside[0]
        terminator = pred.terminator
        if not isinstance(terminator, Branch) or terminator.is_conditional:
            return None
        return pred
