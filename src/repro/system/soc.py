"""SoC builders and the standalone accelerator harness.

`StandaloneAccelerator` runs one kernel on one accelerator with a
chosen memory configuration (private SPM, cache+DRAM, or ideal
memory) — the harness behind the validation and DSE experiments
(Figs. 10-15, Tables II/IV).

`build_soc` assembles the full-system platform of Fig. 1: host agent,
interrupt controller, global crossbar, DRAM, and accelerator clusters —
used for the end-to-end experiments (Table III, Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.build.artifact import Artifact
from repro.core.cluster import AcceleratorCluster
from repro.core.compute_unit import ComputeUnit
from repro.core.config import DeviceConfig
from repro.core.occupancy import OccupancyTracker
from repro.hw.default_profile import default_profile
from repro.hw.power import AreaReport, PowerReport
from repro.hw.profile import HardwareProfile
from repro.ir.module import Module
from repro.mem.cache import Cache
from repro.mem.dram import DRAM
from repro.mem.spm import Scratchpad
from repro.mem.xbar import Crossbar
from repro.sim.clock import ClockDomain
from repro.sim.simobject import AddrRange, System
from repro.system.host import HostAgent
from repro.system.interrupts import InterruptController


@dataclass
class RunResult:
    cycles: int
    runtime_ns: float
    power: PowerReport
    area: AreaReport
    occupancy: OccupancyTracker
    fu_counts: dict[str, int]
    stats: dict = field(default_factory=dict)
    #: `TraceHub.summary()` of the run's trace, when tracing was enabled.
    trace_summary: Optional[dict] = None
    #: `AccessSanitizer.summary()` when the run was sanitized.
    sanitizer: Optional[dict] = None
    #: Transient provenance: which engine produced this result and why a
    #: request fell back.  Deliberately *not* serialized — cached entries
    #: must stay byte-identical no matter which engine produced them
    #: (`run_cache_key` excludes the engine), so provenance never
    #: round-trips through `to_dict`/`from_dict`.
    engine_used: Optional[str] = field(default=None, compare=False)
    fallback_reason: Optional[str] = field(default=None, compare=False)

    def to_dict(self) -> dict:
        """Lossless JSON-safe representation (see `repro.exec.cache`)."""
        return {
            "cycles": self.cycles,
            "runtime_ns": self.runtime_ns,
            "power": self.power.to_dict(),
            "area": self.area.to_dict(),
            "occupancy": self.occupancy.to_dict(),
            "fu_counts": dict(self.fu_counts),
            "stats": {
                key: dict(value) if isinstance(value, dict) else value
                for key, value in self.stats.items()
            },
            "trace_summary": self.trace_summary,
            "sanitizer": self.sanitizer,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        return cls(
            cycles=data["cycles"],
            runtime_ns=data["runtime_ns"],
            power=PowerReport.from_dict(data["power"]),
            area=AreaReport.from_dict(data["area"]),
            occupancy=OccupancyTracker.from_dict(data["occupancy"]),
            fu_counts=dict(data["fu_counts"]),
            stats=dict(data.get("stats", {})),
            trace_summary=data.get("trace_summary"),
            sanitizer=data.get("sanitizer"),
        )


class StandaloneAccelerator:
    """One accelerator + one memory configuration, run to completion."""

    SPM_BASE = 0x2000_0000
    DRAM_BASE = 0x8000_0000

    def __init__(
        self,
        source: Union[str, Module, Artifact],
        func_name: str,
        config: Optional[DeviceConfig] = None,
        profile: Optional[HardwareProfile] = None,
        memory: str = "spm",
        unroll_factor: int = 1,
        spm_bytes: int = 1 << 20,
        spm_read_ports: int = 2,
        spm_write_ports: int = 2,
        spm_banks: int = 1,
        cache_kwargs: Optional[dict] = None,
        dram_kwargs: Optional[dict] = None,
        artifact_store=None,
        pipeline=None,
        engine: str = "dynamic",
    ) -> None:
        if memory not in ("spm", "cache", "ideal"):
            raise ValueError(f"unknown memory configuration '{memory}'")
        from repro.engine import ENGINES

        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine '{engine}'; valid: {', '.join(ENGINES)}"
            )
        self.memory = memory
        #: Requested execution backend; :meth:`run` may still fall back
        #: to the dynamic engine (see `repro.engine.resolve_engine`).
        self.engine_request = engine
        #: Engine that actually executed the most recent run().
        self.engine_used: Optional[str] = None
        #: Why a graph request fell back to dynamic (None otherwise).
        self.fallback_reason: Optional[str] = None
        #: `ScheduleTrace` captured by the most recent run() when
        #: ``capture_trace`` was set (None otherwise).
        self.captured_trace = None
        self.artifact_store = artifact_store
        self._graph = None
        self.config = config or DeviceConfig()
        if memory == "ideal":
            self.config.ideal_memory = True
        self.profile = profile or default_profile(self.config.cycle_time_ns)
        if isinstance(source, (Module, Artifact)):
            # Prebuilt upstream (e.g. compiled once by the sweep parent
            # and shipped here); unroll_factor/pipeline were already
            # baked in by whoever built it.
            self.module = source.module if isinstance(source, Artifact) else source
        else:
            from repro.build.pipeline import build_module

            self.module = build_module(
                source, func_name, pipeline=pipeline,
                unroll_factor=unroll_factor, store=artifact_store,
            ).module
        self.func_name = func_name

        self.system = System(f"{func_name}.sys", clock_freq_hz=self.config.clock_freq_hz)
        self.unit = ComputeUnit(
            f"{func_name}.acc",
            self.system,
            self.module,
            func_name,
            self.profile,
            config=self.config,
        )

        if memory in ("spm", "ideal"):
            self.spm = Scratchpad(
                f"{func_name}.spm",
                self.system,
                base=self.SPM_BASE,
                size=spm_bytes,
                read_ports=spm_read_ports,
                write_ports=spm_write_ports,
                banks=spm_banks,
                clock=self.unit.clock,
            )
            self.unit.attach_private_spm(self.spm)
            self.unit.comm.add_memory_route(self.spm.range, self.spm.make_port("acc"))
            self.data_mem = self.spm.image
            self.dram = None
            self.cache = None
        else:
            dram_kwargs = dict(dram_kwargs or {})
            dram_size = dram_kwargs.pop("size", 1 << 24)
            self.dram = DRAM(
                f"{func_name}.dram",
                self.system,
                base=self.DRAM_BASE,
                size=dram_size,
                clock=self.unit.clock,
                **dram_kwargs,
            )
            self.cache = Cache(
                f"{func_name}.l1",
                self.system,
                clock=self.unit.clock,
                **(cache_kwargs or {}),
            )
            self.cache.mem_side.bind(self.dram.port)
            self.unit.comm.add_memory_route(self.dram.range, self.cache.cpu_side)
            self.data_mem = self.dram.image
            self.spm = None

    # -- data staging ----------------------------------------------------------
    def alloc_array(self, array: np.ndarray) -> int:
        return self.data_mem.alloc_array(np.ascontiguousarray(array))

    def alloc(self, nbytes: int) -> int:
        return self.data_mem.alloc(nbytes)

    def read_array(self, addr: int, dtype, count: int) -> np.ndarray:
        return self.data_mem.read_array(addr, dtype, count)

    # -- static checks --------------------------------------------------------------
    def lint(self):
        """System lints over this harness: address-map overlaps, the
        kernel's static footprint vs. the SPM, and any DMA transfers.
        Returns an `repro.analysis.AnalysisReport`."""
        from repro.analysis.syslint import (
            describe_soc,
            footprints_from_module,
            lint_system,
        )

        desc = describe_soc(self)
        if self.spm is not None:
            desc.kernels.extend(
                footprints_from_module(self.module, self.func_name,
                                       region=self.spm.name))
        return lint_system(desc)

    # -- lifecycle ------------------------------------------------------------------
    def reset(self) -> None:
        """Tear down run state: event queue, per-object state, stats,
        and the data-memory allocator.  After a reset the accelerator can
        stage and run again from a clean slate."""
        self.system.reset()
        self.data_mem.reset_allocator()

    # -- execution ------------------------------------------------------------------
    def _compiled_graph(self):
        """Lower (once) to a `SimGraph` via the build pipeline's graph
        stage, consulting the artifact store when one is attached."""
        if self._graph is None:
            from repro.build.artifact import ElaboratedDesign
            from repro.build.pipeline import BuildPipeline

            stage = BuildPipeline(store=self.artifact_store)
            self._graph = stage.graph(ElaboratedDesign(self.unit.iface)).payload
        return self._graph

    def run(self, args: list, max_ticks: Optional[int] = None,
            max_events: Optional[int] = None, watchdog=None,
            engine: Optional[str] = None,
            schedule_trace=None, capture_trace: bool = False) -> RunResult:
        """Run to completion and collect a `RunResult`.

        ``schedule_trace`` enables the ``retime`` engine: the graph
        scheduler replays the captured content against *this* memory
        configuration (see `repro.engine.retime`).  ``capture_trace``
        asks a graph run to record a trace as a side effect; it lands on
        :attr:`captured_trace`.  A retime request degrades to a plain
        graph run (with ``fallback_reason`` set) when no usable trace is
        available — and still honours ``capture_trace``, so the caller
        can capture-on-miss.
        """
        from repro.engine import (
            GraphLoweringError,
            RetimeError,
            TraceCapture,
            resolve_engine,
        )

        requested = engine if engine is not None else self.engine_request
        chosen, reason = resolve_engine(requested, self,
                                        max_events=max_events,
                                        watchdog=watchdog,
                                        schedule_trace=schedule_trace)
        graph = None
        self.captured_trace = None
        if chosen in ("graph", "retime"):
            try:
                graph = self._compiled_graph()
            except GraphLoweringError as exc:
                chosen, reason = "dynamic", f"lowering failed: {exc}"
        if chosen == "retime":
            try:
                schedule_trace.validate(graph, self.func_name)
            except RetimeError as exc:
                chosen, reason = "graph", f"unusable schedule trace: {exc}"
        self.engine_used = chosen
        self.fallback_reason = reason
        if chosen in ("graph", "retime"):
            replay = schedule_trace if chosen == "retime" else None
            cap = (TraceCapture()
                   if capture_trace and replay is None else None)
            completed = self.unit.launch_compiled(graph, args,
                                                  max_ticks=max_ticks,
                                                  capture=cap, replay=replay)
            if not completed:
                raise RuntimeError(
                    f"{self.func_name}: simulation ended before kernel "
                    f"completion"
                )
            if cap is not None:
                self.captured_trace = cap.to_trace(graph, self.func_name)
        else:
            done = {"flag": False}
            self.unit.launch(args, on_done=lambda: done.update(flag=True))
            self.system.run(max_tick=max_ticks, max_events=max_events,
                            watchdog=watchdog)
            if not done["flag"]:
                raise RuntimeError(
                    f"{self.func_name}: simulation ended before kernel "
                    f"completion"
                )
        engine = self.unit.engine
        return RunResult(
            cycles=engine.total_cycles,
            runtime_ns=engine.runtime_ns(),
            power=self.unit.power_report(),
            area=self.unit.area_report(),
            occupancy=engine.occupancy,
            fu_counts=dict(self.unit.iface.cdfg.fu_counts),
            stats=self.system.dump_stats(),
            engine_used=self.engine_used,
            fallback_reason=self.fallback_reason,
        )


@dataclass
class SoC:
    """The assembled full-system platform (Fig. 1)."""

    system: System
    dram: DRAM
    global_xbar: Crossbar
    host: HostAgent
    irq: InterruptController
    clusters: list[AcceleratorCluster] = field(default_factory=list)

    def add_cluster(
        self,
        name: str,
        shared_spm_bytes: int = 0,
        mmr_base: int = 0x1000_0000,
        spm_base: int = 0x2000_0000,
        llc: Optional[Cache] = None,
        acc_clock: Optional[ClockDomain] = None,
    ) -> AcceleratorCluster:
        cluster = AcceleratorCluster(
            name,
            self.system,
            mmr_base=mmr_base,
            spm_base=spm_base,
            shared_spm_bytes=shared_spm_bytes,
            clock=acc_clock or self.system.clock,
        )
        self.clusters.append(cluster)
        return cluster

    def finalize(self) -> None:
        """Wire every cluster below the global crossbar."""
        for cluster in self.clusters:
            cluster.connect_global(self.global_xbar, self.dram.range)

    def address_map(self) -> list:
        """Every mapped region (MMR/SPM/DRAM/...) as `MemRegion` records."""
        from repro.analysis.syslint import describe_soc

        return describe_soc(self).regions

    def lint(self):
        """System lints (SYS301-306) over the assembled platform.

        Returns an `repro.analysis.AnalysisReport`; run after
        :meth:`finalize` (and after a simulation, to also validate the
        DMA transfers the run actually programmed and check the
        concurrency rules against the recorded driver/launch logs).
        """
        from repro.analysis.concurrency import describe_concurrency
        from repro.analysis.syslint import describe_soc, lint_system

        desc = describe_soc(self)
        desc.concurrency = describe_concurrency(self)
        return lint_system(desc)

    def simulation(self) -> "Simulation":
        """An execution-layer `Simulation` owning this platform's system."""
        from repro.exec.context import Simulation

        return Simulation(self.system)

    def run(self, max_ticks: Optional[int] = None,
            max_events: Optional[int] = None, watchdog=None) -> str:
        return self.simulation().run(max_tick=max_ticks, max_events=max_events,
                                     watchdog=watchdog)


def build_soc(
    name: str = "soc",
    dram_size: int = 1 << 24,
    dram_base: int = 0x8000_0000,
    host_clock_hz: float = 1.2e9,
    system_clock_hz: float = 1e9,
    host_op_overhead_cycles=25,
) -> SoC:
    """Create the host + interconnect + DRAM skeleton of Fig. 1."""
    system = System(name, clock_freq_hz=system_clock_hz)
    global_xbar = Crossbar(f"{name}.gxbar", system)
    dram = DRAM(f"{name}.dram", system, base=dram_base, size=dram_size)
    global_xbar.attach_slave(dram.port, dram.range, label="dram")
    irq = InterruptController(f"{name}.gic", system)
    host_clock = ClockDomain(f"{name}.host_clk", host_clock_hz)
    host = HostAgent(
        f"{name}.host",
        system,
        irq_controller=irq,
        op_overhead_cycles=host_op_overhead_cycles,
        clock=host_clock,
    )
    host.port.bind(global_xbar.slave_port("host"))
    return SoC(system=system, dram=dram, global_xbar=global_xbar, host=host, irq=irq)


def run_standalone(
    source: Union[str, Module],
    func_name: str,
    args_builder,
    **kwargs,
) -> RunResult:
    """One-call helper: build, stage data, run.

    ``args_builder(acc)`` receives the `StandaloneAccelerator`, stages
    input arrays, and returns the kernel argument list.

    Thin shim over :class:`repro.exec.SimContext`, kept for
    backwards compatibility.
    """
    from repro.exec.context import SimContext

    return SimContext.from_source(source, func_name, args_builder, **kwargs).run()
