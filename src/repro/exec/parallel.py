"""Process-parallel design-space sweeps.

The paper's DSE figures (13-15) are embarrassingly parallel: every
parameter point is an independent simulation over the same seeded
dataset.  `ParallelSweep` fans the points out over a
`ProcessPoolExecutor` and reassembles the results in grid order, so the
output is independent of scheduling.  Determinism is guaranteed by
construction:

* each worker builds its own `SimContext` from a pickled spec (no
  shared simulator state), and
* *every* result — serial or parallel — crosses a lossless
  `RunResult.to_dict()`/`from_dict()` round trip, so ``workers=N``
  produces byte-identical `SweepPoint.record()` rows to ``workers=1``.

With a `RunCache` attached, already-known points skip simulation
entirely; only the misses are submitted to the pool.  The kernel is
compiled *once per distinct (source, func, pipeline)* in the parent —
see `repro.build` — and shipped to workers as a prebuilt `Module`, so
adding sweep points never adds frontend work.

Sweeps are *hardened*: a point that crashes, hangs (watchdog), or
exceeds ``point_timeout`` yields a `SweepPoint` carrying a
`FailureRecord` while every other point completes normally.  Crashed
workers are retried up to ``retries`` times with deterministic
exponential backoff (capped by ``retry_backoff_cap_s``);
``strict=True`` restores fail-fast semantics.

Sweeps are also *checkpointable*: with ``checkpoint=<path>`` every
completed point is appended to a durable JSONL file keyed by its
run-cache key, and a re-run of the same sweep — after a crash, a
SIGKILL, a new process — loads the file and re-executes only the
points it is missing (see `repro.exec.checkpoint.SweepCheckpoint`).
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.exec.cache import RunCache, run_cache_key
from repro.exec.checkpoint import SweepCheckpoint
from repro.exec.context import SimContext
from repro.exec.failures import FailureRecord, SweepPointError
from repro.faults import FaultPlan, watchdog_spec
from repro.system.soc import RunResult
from repro.trace import TraceConfig
from repro.workloads.base import Workload


@dataclass
class SweepPoint:
    params: dict
    result: Optional[RunResult] = None
    failure: Optional[FailureRecord] = None
    #: Engine that actually produced the result ("dynamic"/"graph"/
    #: "retime"), "" when unknown (cache/checkpoint hits — no
    #: simulation ran).
    engine_used: str = ""
    #: Why a requested engine degraded for this point ("" otherwise).
    fallback_reason: str = ""
    #: True when the result came from re-timing a captured
    #: `ScheduleTrace` instead of a full simulation.
    retimed: bool = False

    @property
    def ok(self) -> bool:
        return self.failure is None and self.result is not None

    @property
    def cycles(self) -> int:
        return self.result.cycles if self.result is not None else 0

    @property
    def runtime_us(self) -> float:
        return self.result.runtime_ns / 1e3 if self.result is not None else 0.0

    @property
    def power_mw(self) -> float:
        return self.result.power.total_mw if self.result is not None else 0.0

    def record(self) -> dict:
        """Flat dict for CSV export; failed points serialize zeroed metrics."""
        row = dict(self.params)
        occupancy = self.result.occupancy if self.result is not None else None
        row.update(
            cycles=self.cycles,
            runtime_us=self.runtime_us,
            power_mw=self.power_mw,
            stall_fraction=occupancy.stall_fraction() if occupancy else 0.0,
            issue_fraction=occupancy.issue_fraction() if occupancy else 0.0,
            status="ok" if self.ok else "failed",
            error="" if self.failure is None else self.failure.summary(),
            # Stable provenance columns: which engine produced the row
            # and whether it was re-timed from a captured trace, so
            # retime-vs-full provenance survives into dse.reports.
            engine_used=self.engine_used,
            fallback_reason=self.fallback_reason,
            retimed=self.retimed,
        )
        return row


def grid_points(param_grid: dict[str, Iterable]) -> list[dict]:
    """Cartesian product of a parameter grid, in key-major order."""
    keys = list(param_grid)
    return [
        dict(zip(keys, values))
        for values in itertools.product(*(param_grid[k] for k in keys))
    ]


def _execute_point(workload: Workload, acc_kwargs: dict, seed: int,
                   verify: bool, max_ticks: Optional[int],
                   trace: Optional[TraceConfig] = None,
                   faults=None, watchdog=None,
                   timeout_s: Optional[float] = None,
                   module=None, engine: str = "dynamic",
                   artifact_store=None) -> dict:
    """Worker body: one full SimContext lifecycle, returned as a payload dict.

    Runs in a pool process (or inline for the serial path — the same
    code either way, which is what makes the two paths byte-identical).
    ``module`` is the kernel IR prebuilt by the parent (compiled once
    per distinct kernel and shipped across the pool), so workers never
    run the frontend.  Failures come back as ``{"__failure__": ...}``
    payloads rather than raised exceptions, so the parent never depends
    on exception pickling; the per-point timeout is enforced *in the
    worker* by a wall-clock watchdog, which works identically for both
    paths.

    ``artifact_store`` is only passed on the inline path (stores are
    process-local); under ``engine="retime"`` it is where captured
    `ScheduleTrace`s are published and found again.  The payload's
    transient ``__engine__`` sidecar carries per-point provenance back
    to the parent; it is popped before the result dict is cached,
    checkpointed, or rehydrated.
    """
    try:
        ctx = SimContext(workload, seed=seed, verify=verify, max_ticks=max_ticks,
                         trace=trace, faults=faults, watchdog=watchdog,
                         timeout_s=timeout_s, module=module, engine=engine,
                         artifact_store=artifact_store,
                         **acc_kwargs)
        payload = ctx.run().to_dict()
        payload["__engine__"] = {
            "engine_used": ctx.engine_used or "",
            "fallback_reason": ctx.fallback_reason or "",
            "retimed": ctx.engine_used == "retime",
            "trace_hit": ctx.trace_hit,
            "trace_miss": ctx.trace_miss,
            "trace_captured": ctx.trace_captured,
        }
        return payload
    except Exception as exc:  # noqa: BLE001 - folded into a FailureRecord
        return {"__failure__": FailureRecord.from_exception(exc).to_dict()}


@dataclass
class ParallelSweep:
    """Sweep executor: ``workers=1`` is the deterministic serial path,
    ``workers=N`` fans pending points out across processes."""

    workers: int = 1
    cache: Optional[RunCache] = None
    verify: bool = True
    max_ticks: Optional[int] = None
    #: Optional tracing for every point (TraceConfig or channel spec).
    #: Observability only — never part of the run-cache key, so a traced
    #: sweep and an untraced one share cached results.
    trace: object = None
    #: Per-point wall-clock budget in seconds (None = unlimited).
    point_timeout: Optional[float] = None
    #: How many times to resubmit points lost to a crashed worker
    #: process before falling back to in-process serial execution.
    #: Retry N sleeps ``retry_backoff_s * 2^(N-1)`` seconds, capped at
    #: ``retry_backoff_cap_s`` — deterministic (no jitter) so schedules
    #: are testable and reproducible.
    retries: int = 0
    retry_backoff_s: float = 0.1
    retry_backoff_cap_s: float = 5.0
    #: Fail-fast: re-raise the first point failure as `SweepPointError`
    #: instead of degrading gracefully.
    strict: bool = False
    #: Fault injection: a `FaultPlan`/spec applied to every point, or a
    #: callable ``params -> plan|spec|None`` for point-selective faults.
    faults: object = None
    #: Hang detection for every point: `SimWatchdog` spec (True, cycle
    #: budget, kwargs dict, or instance — reduced to a picklable spec).
    watchdog: object = None
    #: Content-addressed compile cache (`repro.build.ArtifactStore`):
    #: kernels already built by an earlier sweep/process are store hits.
    artifact_store: object = None
    #: Pass-pipeline spec applied to every point's compile (string or
    #: `PipelineSpec`).  None = the standard preset driven by each
    #: point's ``unroll_factor``; a non-default spec joins the run-cache
    #: key so differently-optimized runs never collide.
    pipeline: object = None
    #: Execution backend for every point ("dynamic", "graph", or
    #: "retime").  Engines are byte-identical, so they share run-cache
    #: entries; points a backend cannot model fall back per-point (see
    #: `repro.engine.resolve_engine`).
    engine: str = "dynamic"
    #: Incremental re-simulation (equivalent to ``engine="retime"``):
    #: points sharing a datapath key (`repro.exec.cache.split_cache_key`)
    #: run one full graph simulation — capturing a `ScheduleTrace` —
    #: and every other point of the group replays it against its own
    #: memory configuration, byte-identical and much cheaper.  Points
    #: the retimer cannot serve (faults, cache-backed memory,
    #: unclassified parameters — conservatively given their own
    #: datapath key) fall back to full simulation automatically, with
    #: the reason recorded on the `SweepPoint`.  Forces the in-process
    #: serial execution path: the trace store is process-local, and
    #: within-group points are sequentially dependent anyway.
    retime: bool = False
    #: Durable resume: a path (or `SweepCheckpoint`) recording every
    #: completed point; a re-run skips the points already on disk.
    #: After `run()`, ``checkpoint_resumed`` counts the skipped points.
    checkpoint: object = None

    def run(
        self,
        workload: Workload,
        param_grid: dict[str, Iterable],
        configure: Callable[[dict], dict],
        seed: int = 7,
        unroll_factor: int = 1,
        on_point: Optional[Callable[[int, int, SweepPoint], None]] = None,
    ) -> list[SweepPoint]:
        """Run ``workload`` across the cartesian product of ``param_grid``.

        ``configure(params)`` maps one parameter point to the keyword
        arguments of `StandaloneAccelerator` (it may include a 'config'
        DeviceConfig).  Every point runs the same dataset (same seed), so
        differences are purely architectural.

        ``on_point(done, total, point)`` is called in the parent process
        once per resolved point — cache hits first (grid order), then
        executed points as they complete (completion order under
        ``workers>1``) — with ``done`` counting monotonically to
        ``total``.  Observability only: it never joins cache keys, and
        both the serial and parallel paths report every point exactly
        once.
        """
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        entries: list[tuple[dict, dict, Optional[FaultPlan]]] = []
        for params in grid_points(param_grid):
            kwargs = configure(params)
            kwargs.setdefault("unroll_factor", unroll_factor)
            entries.append((params, kwargs, self._plan_for(params)))

        total = len(entries)
        done = 0

        def notify(index: int, payload: Optional[dict],
                   result: Optional[RunResult] = None) -> None:
            nonlocal done
            done += 1
            if on_point is None:
                return
            failure = None
            info: dict = {}
            if payload is not None:
                failure_dict = payload.get("__failure__")
                if failure_dict is not None:
                    failure = FailureRecord.from_dict(failure_dict)
                else:
                    info = payload.get("__engine__") or {}
                    result = RunResult.from_dict(payload)
            on_point(done, total,
                     SweepPoint(params=entries[index][0], result=result,
                                failure=failure,
                                engine_used=info.get("engine_used", ""),
                                fallback_reason=info.get("fallback_reason", ""),
                                retimed=bool(info.get("retimed"))))

        retime_active = bool(self.retime) or self.engine == "retime"
        self._retime_active = retime_active
        self._exec_store = self.artifact_store
        self.partition_report = None
        self.datapath_groups = 0
        self.trace_hits = 0
        self.trace_misses = 0
        self.trace_captures = 0
        self.retimed_points = 0
        if retime_active:
            if self._exec_store is None:
                # Captured traces must outlive a single point even when
                # the caller attached no store; an ephemeral in-memory
                # store scopes the sharing to this sweep.
                from repro.build.store import ArtifactStore

                self._exec_store = ArtifactStore()
            # DEP204: diagnose grid parameters the datapath/memory
            # partition does not classify (they silently force full
            # re-simulation), and report the grouping structure.
            from repro.analysis.partition import check_sweep_partition
            from repro.exec.cache import split_cache_key

            self.partition_report = check_sweep_partition(
                [kwargs for __, kwargs, __ in entries],
                subject=f"sweep:{workload.name}")
            groups: set[str] = set()
            for __, kwargs, __ in entries:
                groups.add(split_cache_key(
                    workload.source, workload.func_name, seed=seed,
                    pipeline=self.pipeline, **kwargs)[0])
            self.datapath_groups = len(groups)

        ckpt = SweepCheckpoint.coerce(self.checkpoint)
        ckpt_rows = ckpt.load() if ckpt is not None else {}
        self.checkpoint_resumed = 0
        results: list[Optional[RunResult]] = [None] * len(entries)
        failures: list[Optional[FailureRecord]] = [None] * len(entries)
        pending: list[tuple[int, Optional[str], dict, Optional[FaultPlan]]] = []
        for index, (params, kwargs, plan) in enumerate(entries):
            key: Optional[str] = None
            # Faulty points bypass the cache *and* the checkpoint in
            # both directions: a corrupted result must never be stored,
            # and a clean stored result must never stand in for an
            # injected run.
            if (self.cache is not None or ckpt is not None) and not plan:
                key = run_cache_key(workload.source, workload.func_name,
                                    seed=seed, pipeline=self.pipeline,
                                    **kwargs)
            if key is not None and self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = cached
                    if ckpt is not None:
                        ckpt.record(key, cached.to_dict())
                    notify(index, None, result=cached)
                    continue
            if key is not None and ckpt is not None and key in ckpt_rows:
                # Resumed from the checkpoint: the same lossless dict
                # round trip every other path takes.
                result = RunResult.from_dict(ckpt_rows[key])
                results[index] = result
                self.checkpoint_resumed += 1
                if self.cache is not None:
                    self.cache.put(key, result)
                notify(index, None, result=result)
                continue
            pending.append((index, key, kwargs, plan))
        if ckpt is not None:
            ckpt.resumed = self.checkpoint_resumed

        modules = self._prebuild(workload, pending)
        payloads = self._execute(
            workload, pending, seed, modules,
            progress=lambda slot, payload: notify(pending[slot][0], payload))
        infos: list[dict] = [{} for _ in entries]
        for (index, key, __, ___), payload in zip(pending, payloads):
            failure_dict = payload.get("__failure__")
            if failure_dict is not None:
                failure = FailureRecord.from_dict(failure_dict)
                if self.strict:
                    raise SweepPointError(entries[index][0], failure)
                failures[index] = failure
                continue
            # The provenance sidecar never reaches the cache, the
            # checkpoint, or the rehydrated result — cached entries stay
            # byte-identical no matter which engine produced them.
            info = payload.pop("__engine__", None) or {}
            infos[index] = info
            self.trace_hits += 1 if info.get("trace_hit") else 0
            self.trace_misses += 1 if info.get("trace_miss") else 0
            self.trace_captures += 1 if info.get("trace_captured") else 0
            self.retimed_points += 1 if info.get("retimed") else 0
            result = RunResult.from_dict(payload)
            results[index] = result
            if key is not None:
                if self.cache is not None:
                    self.cache.put(key, result)
                if ckpt is not None:
                    ckpt.record(key, payload)
        return [
            SweepPoint(params=params, result=results[index],
                       failure=failures[index],
                       engine_used=infos[index].get("engine_used", ""),
                       fallback_reason=infos[index].get("fallback_reason", ""),
                       retimed=bool(infos[index].get("retimed")))
            for index, (params, __, ___) in enumerate(entries)
        ]

    def retry_delay(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based):
        ``retry_backoff_s * 2^(attempt-1)``, capped — exponential but
        deterministic, so the schedule is testable."""
        return min(self.retry_backoff_s * (2 ** max(0, attempt - 1)),
                   self.retry_backoff_cap_s)

    # ------------------------------------------------------------------
    def _prebuild(self, workload: Workload, pending: list) -> list:
        """Compile each *distinct* kernel once; map every point to its IR.

        Points differ in memory/datapath knobs far more often than in
        compile-relevant ones, so a sweep usually holds one distinct
        (source, func, pipeline) triple — compiled here, in the parent,
        exactly once, and shipped to workers as a prebuilt `Module`.
        This is what turns the sweep hot path from O(points × compile)
        into O(distinct kernels).
        """
        from repro.build.artifact import artifact_key
        from repro.build.pipeline import build_module, resolve_spec

        by_key: dict[str, object] = {}
        modules = []
        for __, __, kwargs, __ in pending:
            spec = resolve_spec(self.pipeline,
                                unroll_factor=kwargs.get("unroll_factor", 1))
            akey = artifact_key(workload.source, workload.func_name, spec)
            if akey not in by_key:
                by_key[akey] = build_module(
                    workload.source, workload.func_name, pipeline=spec,
                    store=self.artifact_store,
                ).module
            modules.append(by_key[akey])
        return modules

    def _plan_for(self, params: dict) -> Optional[FaultPlan]:
        """Resolve the sweep-level fault setting for one point."""
        faults = self.faults
        if callable(faults) and not isinstance(faults, FaultPlan):
            faults = faults(params)
        plan = FaultPlan.coerce(faults)
        return plan if plan else None

    def _execute(self, workload: Workload,
                 pending: list[tuple[int, Optional[str], dict,
                                     Optional[FaultPlan]]],
                 seed: int, modules: list,
                 progress: Optional[Callable[[int, dict], None]] = None,
                 ) -> list[dict]:
        """Run the pending points, preserving submission order.

        Pool crashes (a worker segfaults or is OOM-killed) don't discard
        the sweep: completed futures are harvested, only genuinely
        unfinished points are resubmitted (up to ``retries`` times, with
        backoff), and whatever still remains runs serially in-process.

        ``progress(slot, payload)`` fires in the parent exactly once per
        slot, the moment its payload is first recorded — the retry path
        can observe the same future twice, so recording (not completion)
        is the notification point.
        """
        trace = TraceConfig.coerce(self.trace)
        wd_spec = watchdog_spec(self.watchdog)
        payloads: dict[int, dict] = {}

        def record(slot: int, payload: dict) -> None:
            if slot in payloads:
                return
            payloads[slot] = payload
            if progress is not None:
                progress(slot, payload)

        retime_active = getattr(self, "_retime_active",
                                self.engine == "retime" or bool(self.retime))
        engine = "retime" if retime_active else self.engine
        # Stores are process-local, so only the inline path gets one —
        # and only under retime, where trace sharing is the whole point
        # (the plain inline path keeps its historical no-store
        # behaviour, preserving compile-once accounting).
        store = (getattr(self, "_exec_store", self.artifact_store)
                 if retime_active else None)

        def run_inline(slot: int) -> dict:
            __, __, kwargs, plan = pending[slot]
            return _execute_point(workload, kwargs, seed, self.verify,
                                  self.max_ticks, trace, plan, wd_spec,
                                  self.point_timeout, modules[slot],
                                  engine, store)

        if self.workers == 1 or len(pending) <= 1 or retime_active:
            # Retime sweeps run serially in-process by design: content
            # addressing does the grouping (the first point of each
            # datapath group captures, the rest replay from the shared
            # store), and a replay is cheap enough that fan-out would
            # cost more in capture duplication than it buys.
            for slot in range(len(pending)):
                record(slot, run_inline(slot))
            return [payloads[slot] for slot in range(len(pending))]

        remaining = list(range(len(pending)))
        attempts = 0
        pool_ok = True
        while remaining and pool_ok and attempts <= self.retries:
            if attempts > 0:
                time.sleep(self.retry_delay(attempts))
            futures: dict = {}
            try:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    futures = {
                        slot: pool.submit(
                            _execute_point, workload, pending[slot][2], seed,
                            self.verify, self.max_ticks, trace,
                            pending[slot][3], wd_spec, self.point_timeout,
                            modules[slot], self.engine,
                        )
                        for slot in remaining
                    }
                    # Harvest in completion order so progress callbacks
                    # fire as points finish, not in submission order.
                    slot_of = {future: slot for slot, future in futures.items()}
                    for future in as_completed(slot_of):
                        record(slot_of[future], future.result())
                    remaining = []
            except (BrokenProcessPool, PermissionError, OSError):
                # A worker died mid-flight (or this environment forbids
                # fork/semaphores entirely).  Keep every result that did
                # complete; only rerun what is genuinely unfinished.
                for slot, future in futures.items():
                    if (slot not in payloads and future.done()
                            and not future.cancelled()
                            and future.exception() is None):
                        record(slot, future.result())
                remaining = [slot for slot in remaining if slot not in payloads]
                if not payloads:
                    # Nothing ever completed: process support is likely
                    # absent — stop burning retries on a dead pool.
                    pool_ok = False
                attempts += 1
        # Leftovers (retry budget exhausted, or no process support at
        # all) degrade to the serial path, which is result-identical.
        for slot in remaining:
            record(slot, run_inline(slot))
        return [payloads[slot] for slot in range(len(pending))]
