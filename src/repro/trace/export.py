"""Trace exporters: Chrome trace-event JSON, text log, cycle timeline.

Three views over one `TraceHub`:

* :func:`to_chrome_json` — the Chrome trace-event format (the JSON
  flavour Perfetto and ``chrome://tracing`` load directly).  One track
  (``tid``) per SimObject, one category per channel; events with a
  duration render as spans (``ph='X'``), instantaneous ones as instants
  (``ph='i'``).  Timestamps are microseconds, converted from ticks
  (1 tick = 1 ps).
* :func:`to_text` — a plain, grep-friendly log.
* :func:`occupancy_timeline` — the per-cycle issue/stall-attribution
  rows reconstructed from the runtime engine's ``sched`` channel
  (Sec. III-C2's per-cycle scheduling log).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.trace.hub import TraceHub

#: Ticks (picoseconds) per Chrome-trace microsecond.
_TICKS_PER_US = 1_000_000


def _ts_us(tick: int) -> float:
    """Ticks -> microseconds, kept exact for integer-microsecond ticks."""
    us, rem = divmod(tick, _TICKS_PER_US)
    return us if rem == 0 else tick / _TICKS_PER_US


def chrome_trace(hub: TraceHub, pid: int = 1) -> dict:
    """The hub's contents as a Chrome trace-event dict (pre-JSON)."""
    trace_events: list[dict] = []
    tids: dict[str, int] = {}
    for source in hub.sources():
        tid = tids[source] = len(tids) + 1
        trace_events.append({
            "name": "thread_name", "ph": "M", "ts": 0, "pid": pid, "tid": tid,
            "args": {"name": source},
        })
    for event in hub.events():
        record = {
            "name": event.kind,
            "cat": event.channel,
            "ph": "X" if event.dur > 0 else "i",
            "ts": _ts_us(event.tick),
            "pid": pid,
            "tid": tids[event.source],
            "args": dict(event.args) if event.args else {},
        }
        if event.dur > 0:
            record["dur"] = _ts_us(event.dur)
        else:
            record["s"] = "t"  # instant scope: thread
        trace_events.append(record)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"generator": "repro.trace", "summary": hub.summary()},
    }


def to_chrome_json(hub: TraceHub, indent: Optional[int] = None) -> str:
    return json.dumps(chrome_trace(hub), sort_keys=True, indent=indent)


def to_text(hub: TraceHub, limit: Optional[int] = None) -> str:
    """Plain text log, one line per buffered event."""
    events = hub.events()
    shown = events if limit is None else events[:limit]
    lines = [
        f"{event.tick:>12d}  {event.channel:<7s} {event.source:<28s} "
        f"{event.kind:<14s}"
        + (f" dur={event.dur}" if event.dur else "")
        + (f" {event.args}" if event.args else "")
        for event in shown
    ]
    if len(events) > len(shown):
        lines.append(f"... {len(events) - len(shown)} more events")
    if hub.total_dropped:
        lines.append(f"({hub.total_dropped} events dropped at capacity "
                     f"{hub.capacity})")
    return "\n".join(lines)


def occupancy_timeline(hub: TraceHub, source: Optional[str] = None) -> list[dict]:
    """Per-cycle issue/stall rows from the ``sched`` channel.

    Every runtime engine emits one ``cycle`` event per active cycle with
    its issue count, blocked-kind attribution, and outstanding kinds.
    Rows come back in time order; ``source`` restricts to one engine.
    """
    rows = []
    for event in hub.events("sched"):
        if event.kind != "cycle" or not event.args:
            continue
        if source is not None and event.source != source:
            continue
        row = {"tick": event.tick, "source": event.source}
        row.update(event.args)
        rows.append(row)
    rows.sort(key=lambda row: (row["tick"], row["source"]))
    return rows


def format_timeline(rows: list[dict], limit: int = 50) -> str:
    """Render occupancy rows as an aligned per-cycle stall report."""
    if not rows:
        return "(no sched events; trace the 'sched' channel)"
    lines = [f"{'tick':>12s}  {'source':<24s} {'issued':>6s}  blocked / outstanding"]
    for row in rows[:limit]:
        blocked = row.get("blocked") or {}
        blocked_text = ",".join(f"{kind}={count}" for kind, count in sorted(blocked.items())) or "-"
        outstanding = ",".join(row.get("outstanding") or []) or "-"
        lines.append(
            f"{row['tick']:>12d}  {row['source']:<24s} {row.get('issued', 0):>6d}"
            f"  {blocked_text} / {outstanding}"
        )
    if len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more cycles")
    return "\n".join(lines)


def write_trace(hub: TraceHub, path: Union[str, Path], format: str = "chrome") -> Path:
    """Write the hub to ``path`` in the requested format; returns the path."""
    path = Path(path)
    if format == "chrome":
        path.write_text(to_chrome_json(hub))
    elif format == "text":
        path.write_text(to_text(hub) + "\n")
    else:
        raise ValueError(f"unknown trace format '{format}'")
    return path
