"""Concurrency model + SYS304/305/306 rule unit tests."""

from repro.analysis.concurrency import (
    AgentOp,
    ConcurrencyModel,
    lint_concurrency,
)


def _codes(report):
    return [d.code for d in report]


# ----------------------------------------------------------------------
# Happens-before machinery
# ----------------------------------------------------------------------
def test_program_order_within_agent():
    m = ConcurrencyModel()
    m.add_op("a", "a0")
    m.add_op("a", "a1")
    hb = m.happens_before()
    assert hb(0, 1) and not hb(1, 0)


def test_cross_agent_edge_and_transitivity():
    m = ConcurrencyModel()
    m.add_op("a", "a0")
    m.add_op("b", "b0")
    m.add_op("b", "b1")
    m.add_edge("a0", "b0")
    hb = m.happens_before()
    assert hb(0, 1)
    assert hb(0, 2)  # a0 -> b0 -> b1 (program order)
    assert not hb(1, 0)


def test_cyclic_edges_terminate():
    # A malformed model (mutual edges) must not hang the closure.
    m = ConcurrencyModel()
    m.add_op("a", "a0")
    m.add_op("b", "b0")
    m.add_edge("a0", "b0")
    m.add_edge("b0", "a0")
    hb = m.happens_before()
    assert hb(0, 1) and hb(1, 0)


def test_duplicate_label_rejected():
    m = ConcurrencyModel()
    m.add_op("a", "x")
    try:
        m.add_op("b", "x")
    except ValueError:
        pass
    else:
        raise AssertionError("duplicate label accepted")


# ----------------------------------------------------------------------
# SYS304: unordered conflicting accesses
# ----------------------------------------------------------------------
def test_unordered_write_write_is_race():
    m = ConcurrencyModel()
    m.add_op("a", "a0", "compute", writes=[(0x1000, 64)])
    m.add_op("b", "b0", "compute", writes=[(0x1020, 64)])
    report = lint_concurrency(m)
    hits = [d for d in report if d.code == "SYS304"]
    assert len(hits) == 1
    assert "write-write" in hits[0].message


def test_ordered_accesses_not_a_race():
    m = ConcurrencyModel()
    m.add_op("a", "a0", "compute", writes=[(0x1000, 64)])
    m.add_op("b", "b0", "compute", reads=[(0x1000, 64)])
    m.add_edge("a0", "b0")
    assert "SYS304" not in _codes(lint_concurrency(m))


def test_disjoint_accesses_not_a_race():
    m = ConcurrencyModel()
    m.add_op("a", "a0", "compute", writes=[(0x1000, 64)])
    m.add_op("b", "b0", "compute", writes=[(0x2000, 64)])
    assert "SYS304" not in _codes(lint_concurrency(m))


def test_read_read_overlap_not_a_race():
    m = ConcurrencyModel()
    m.add_op("a", "a0", "compute", reads=[(0x1000, 64)])
    m.add_op("b", "b0", "compute", reads=[(0x1000, 64)])
    assert "SYS304" not in _codes(lint_concurrency(m))


def test_same_agent_never_races_with_itself():
    m = ConcurrencyModel()
    m.add_op("a", "a0", "compute", writes=[(0x1000, 64)])
    m.add_op("a", "a1", "compute", writes=[(0x1000, 64)])
    assert "SYS304" not in _codes(lint_concurrency(m))


def test_race_report_cap():
    m = ConcurrencyModel()
    for i in range(8):
        m.add_op(f"w{i}", f"w{i}#0", "compute", writes=[(0x1000, 64)])
    report = lint_concurrency(m, max_pair_reports=3)
    assert len([d for d in report if d.code == "SYS304"]) == 3


# ----------------------------------------------------------------------
# SYS305: wait-for cycles
# ----------------------------------------------------------------------
def test_wait_cycle_is_static_deadlock():
    m = ConcurrencyModel()
    m.add_wait("a", "b", "stream x")
    m.add_wait("b", "a", "stream y")
    report = lint_concurrency(m)
    hits = [d for d in report if d.code == "SYS305"]
    assert len(hits) == 1
    assert "a" in hits[0].message and "b" in hits[0].message


def test_wait_chain_without_cycle_clean():
    m = ConcurrencyModel()
    m.add_wait("host", "dma", "dma completion")
    m.add_wait("host", "acc", "irq 0")
    m.add_wait("acc", "dma", "data")
    assert "SYS305" not in _codes(lint_concurrency(m))


def test_three_way_cycle_reported_once():
    m = ConcurrencyModel()
    m.add_wait("a", "b", "1")
    m.add_wait("b", "c", "2")
    m.add_wait("c", "a", "3")
    report = lint_concurrency(m)
    assert len([d for d in report if d.code == "SYS305"]) == 1


# ----------------------------------------------------------------------
# SYS306: start not ordered after the DMA-in
# ----------------------------------------------------------------------
def test_unordered_start_after_fill_warns():
    m = ConcurrencyModel()
    m.add_op("dma", "dma@0", "dma", writes=[(0x2000, 256)])
    m.add_op("acc", "acc#0", "compute", reads=[(0x2000, 256)])
    report = lint_concurrency(m)
    hits = [d for d in report if d.code == "SYS306"]
    assert len(hits) == 1
    assert hits[0].severity.name == "WARNING"


def test_ordered_start_after_fill_clean():
    m = ConcurrencyModel()
    m.add_op("dma", "dma@0", "dma", writes=[(0x2000, 256)])
    m.add_op("acc", "acc#0", "compute", reads=[(0x2000, 256)])
    m.add_edge("dma@0", "acc#0")
    assert "SYS306" not in _codes(lint_concurrency(m))


def test_deliberate_reverse_order_is_not_a_306():
    # compute -> dma (e.g. the DMA drains what the compute produced):
    # ordered either way means no start-before-fill hazard.
    m = ConcurrencyModel()
    m.add_op("acc", "acc#0", "compute", reads=[(0x2000, 256)])
    m.add_op("dma", "dma@0", "dma", writes=[(0x2000, 256)])
    m.add_edge("acc#0", "dma@0")
    assert "SYS306" not in _codes(lint_concurrency(m))


def test_to_dict_round_trip_shape():
    m = ConcurrencyModel()
    m.add_op("a", "a0", "compute", reads=[(0, 8)], writes=[(8, 8)])
    m.add_wait("a", "b", "x")
    data = m.to_dict()
    assert data["agents"] == {"a": "compute"}
    assert data["ops"][0]["label"] == "a0"
    assert data["waits"] == [["a", "b", "x"]]


def test_agentop_to_dict():
    op = AgentOp("l", "a", "dma", reads=[(0, 4)], writes=[(4, 4)])
    d = op.to_dict()
    assert d == {"label": "l", "agent": "a", "kind": "dma",
                 "reads": [[0, 4]], "writes": [[4, 4]]}
