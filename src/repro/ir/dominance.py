"""Dominator analysis (Cooper-Harvey-Kennedy algorithm).

Used by the verifier (SSA dominance checks), mem2reg (phi placement via
dominance frontiers), and loop analysis (back-edge detection).
"""

from __future__ import annotations

from typing import Optional

from repro.ir.module import BasicBlock, Function


class DominatorTree:
    def __init__(self, func: Function) -> None:
        self.func = func
        self.rpo: list[BasicBlock] = []
        self.idom: dict[BasicBlock, Optional[BasicBlock]] = {}
        self._order: dict[BasicBlock, int] = {}
        self._preds = func.predecessor_map()
        self._compute()

    # ------------------------------------------------------------------
    def _compute(self) -> None:
        entry = self.func.entry
        # Reverse post-order over reachable blocks.
        visited: set[int] = set()
        postorder: list[BasicBlock] = []

        def dfs(block: BasicBlock) -> None:
            stack = [(block, iter(block.successors()))]
            visited.add(id(block))
            while stack:
                node, succs = stack[-1]
                advanced = False
                for succ in succs:
                    if id(succ) not in visited:
                        visited.add(id(succ))
                        stack.append((succ, iter(succ.successors())))
                        advanced = True
                        break
                if not advanced:
                    postorder.append(node)
                    stack.pop()

        dfs(entry)
        self.rpo = list(reversed(postorder))
        self._order = {b: i for i, b in enumerate(self.rpo)}

        idom: dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}
        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block is entry:
                    continue
                preds = [p for p in self._preds[block] if p in idom]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = self._intersect(pred, new_idom, idom)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True
        idom[entry] = None
        self.idom = idom

    def _intersect(self, b1: BasicBlock, b2: BasicBlock, idom) -> BasicBlock:
        while b1 is not b2:
            while self._order[b1] > self._order[b2]:
                b1 = idom[b1]
            while self._order[b2] > self._order[b1]:
                b2 = idom[b2]
        return b1

    # ------------------------------------------------------------------
    def is_reachable(self, block: BasicBlock) -> bool:
        return block in self._order

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            node = self.idom.get(node)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def children(self, block: BasicBlock) -> list[BasicBlock]:
        return [b for b, parent in self.idom.items() if parent is block]

    def dominance_frontier(self) -> dict[BasicBlock, set[BasicBlock]]:
        """Cytron et al. dominance frontiers for all reachable blocks."""
        frontier: dict[BasicBlock, set[BasicBlock]] = {b: set() for b in self.rpo}
        for block in self.rpo:
            preds = [p for p in self._preds[block] if self.is_reachable(p)]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner: Optional[BasicBlock] = pred
                while runner is not None and runner is not self.idom[block]:
                    frontier[runner].add(block)
                    runner = self.idom.get(runner)
        return frontier
