"""IR values: constants, arguments, and the instruction base class.

Every SSA value has a type and (if named) a ``%name``.  Instructions
track their operands and the basic block that owns them; use-def chains
are maintained lazily by querying operands rather than via intrusive
use lists, which keeps mutation (by optimization passes) simple.
"""

from __future__ import annotations

import struct
from typing import Iterable, Optional, TYPE_CHECKING

from repro.ir.types import FloatType, IntType, PointerType, Type

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.module import BasicBlock


class Value:
    """Base class for everything that can appear as an operand."""

    def __init__(self, type_: Type, name: str = "") -> None:
        self.type = type_
        self.name = name

    @property
    def ref(self) -> str:
        """Textual reference for printing (``%name`` or a literal)."""
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.type} {self.ref}>"


class Constant(Value):
    """An immediate constant (int bit-pattern, float, or null pointer).

    Integer payloads are stored as Python ints in the *unsigned*
    bit-pattern domain [0, 2^N); helpers interpret signedness per-op,
    matching LLVM semantics.
    """

    def __init__(self, type_: Type, value) -> None:
        super().__init__(type_)
        if isinstance(type_, IntType):
            value = int(value) & type_.mask
        elif isinstance(type_, FloatType):
            value = float(value)
            if type_.bits == 32:
                # Round to binary32 so float constants behave like `float`.
                value = struct.unpack("<f", struct.pack("<f", value))[0]
        elif isinstance(type_, PointerType):
            value = int(value)
        else:
            raise TypeError(f"cannot build constant of type {type_}")
        self.value = value

    @property
    def ref(self) -> str:
        if isinstance(self.type, FloatType):
            return format_float(self.value)
        if isinstance(self.type, PointerType):
            return "null" if self.value == 0 else str(self.value)
        if isinstance(self.type, IntType) and self.type.bits == 1:
            return "true" if self.value else "false"
        return str(self.signed_value())

    def signed_value(self) -> int:
        """Two's-complement interpretation of an integer constant."""
        if not isinstance(self.type, IntType):
            return self.value
        if self.value > self.type.max_signed:
            return self.value - (1 << self.type.bits)
        return self.value

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Constant)
            and self.type == other.type
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


def format_float(value: float) -> str:
    """Print a float so it round-trips exactly through the parser."""
    return repr(float(value))


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: Type, name: str, index: int) -> None:
        super().__init__(type_, name)
        self.index = index


class Instruction(Value):
    """Base class for all instructions.

    ``opcode`` is the LLVM mnemonic; ``operands`` are Values.  Results
    are the instruction object itself (SSA).  ``parent`` is the owning
    basic block, set on insertion.
    """

    # Subclasses override; terminators end a basic block.
    is_terminator = False
    # True for instructions that touch memory.
    is_memory = False

    def __init__(self, opcode: str, type_: Type, operands: Iterable[Value], name: str = "") -> None:
        super().__init__(type_, name)
        self.opcode = opcode
        self.operands: list[Value] = list(operands)
        self.parent: Optional["BasicBlock"] = None

    @property
    def produces_value(self) -> bool:
        return not self.type.is_void

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` in operands; return count."""
        count = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                count += 1
        return count

    def operand_values(self) -> list[Value]:
        return list(self.operands)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.opcode} {self.ref if self.produces_value else ''}>"
