"""Fig. 15 — co-design exploration with FP adders fixed at 64.

The paper narrows the GEMM design space by fixing the floating-point
adder allocation (64 units gave nearly the throughput of 128) and then
examines, per port sweep: (a) stalls vs new-execution cycles, (b)
memory parallelism vs FP-multiplier occupancy, (c) the memory-to-
compute issue ratio vs performance, and (d) the same vs power.

Expected shape: performance is best where the scheduled mix approaches
the kernel's intrinsic FP-to-memory ratio; FP-multiplier occupancy
rises as load/store overlap falls; power grows with bandwidth.
"""

import numpy as np

from conftest import SEED, save_and_print
from repro.core.config import DeviceConfig
from repro.dse import format_table
from repro.exec import SimContext
from repro.workloads import get_workload

PORTS = [4, 8, 16, 32, 64]
FP_ADDERS = 64


def _run(ports):
    workload = get_workload("gemm_dse")
    config = DeviceConfig(
        read_ports=ports,
        write_ports=ports,
        fu_limits={"fp_add": FP_ADDERS},
    )
    context = SimContext(
        workload, seed=SEED, config=config, unroll_factor=8,
        memory="spm", spm_bytes=1 << 15, spm_read_ports=ports, spm_write_ports=ports,
    )
    return context.run()


def test_fig15(benchmark):
    def run():
        rows = []
        for ports in PORTS:
            result = _run(ports)
            occ = result.occupancy
            mix = occ.issue_mix()
            fmul_units = result.fu_counts.get("fp_mul", 1)
            rows.append(
                {
                    "ports": ports,
                    "cycles": result.cycles,
                    "stalled_pct": 100 * occ.entry_stall_fraction(),
                    "new_exec_pct": 100 * (1 - occ.entry_stall_fraction()),
                    "load_cycles_pct": 100 * mix.get("load", 0.0),
                    "store_cycles_pct": 100 * mix.get("store", 0.0),
                    "fp_cycles_pct": 100 * mix.get("fp", 0.0),
                    "fmul_occupancy_pct": 100 * occ.fu_occupancy("fp_mul", fmul_units),
                    "power_mW": result.power.total_mw,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print(
        "fig15_codesign",
        format_table(rows, title=f"Fig. 15: GEMM co-design (fp_add fixed at {FP_ADDERS})",
                     float_fmt="{:.2f}"),
    )

    by_ports = {r["ports"]: r for r in rows}
    # (a) stalls fall with bandwidth.
    assert by_ports[64]["stalled_pct"] <= by_ports[4]["stalled_pct"] + 1e-9
    # (b) FP-multiplier occupancy rises with bandwidth.
    assert by_ports[64]["fmul_occupancy_pct"] >= by_ports[4]["fmul_occupancy_pct"]
    # (c) the best-performing configuration keeps the FP multipliers
    # busiest — performance tracks compute occupancy, not raw bandwidth.
    best = min(rows, key=lambda r: r["cycles"])
    assert best["fmul_occupancy_pct"] >= max(
        r["fmul_occupancy_pct"] for r in rows
    ) - 1e-9
    # (d) power is monotone-ish in bandwidth (energy spent faster).
    assert by_ports[64]["power_mW"] >= by_ports[4]["power_mW"]
