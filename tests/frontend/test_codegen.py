"""Codegen semantics: compiled mini-C must compute what C computes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import CodegenError, compile_c
from repro.ir.interpreter import Interpreter
from repro.ir.memory import MemoryImage
from repro.ir.semantics import to_signed
from repro.ir.types import I32


def run(source, func, args=(), arrays=None, read_back=None):
    """Compile + interpret; optionally stage arrays and read results."""
    module = compile_c(source, func)
    mem = MemoryImage(1 << 16, base=0x1000)
    staged = {}
    final_args = []
    for arg in args:
        if isinstance(arg, np.ndarray):
            addr = mem.alloc_array(arg)
            staged[id(arg)] = addr
            final_args.append(addr)
        else:
            final_args.append(arg)
    result = Interpreter(module, mem).run(func, final_args)
    if read_back is not None:
        array = read_back
        return mem.read_array(staged[id(array)], array.dtype, array.size)
    return result.return_value


def signed(value):
    return to_signed(value, I32)


# -- arithmetic ------------------------------------------------------------
@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
@settings(max_examples=30)
def test_int_arith(a, b):
    src = "int f(int a, int b) { return a * 3 - b / 2 + (a % 7); }"
    expected = a * 3 - int(b / 2) + int(np.fmod(a, 7))
    assert signed(run(src, "f", [a & 0xFFFFFFFF, b & 0xFFFFFFFF])) == expected


@given(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6))
@settings(max_examples=30)
def test_double_arith(a, b):
    src = "double f(double a, double b) { return a * b - a / 2.0 + 1.5; }"
    assert run(src, "f", [a, b]) == a * b - a / 2.0 + 1.5


def test_unsigned_division():
    src = "unsigned int f(unsigned int a, unsigned int b) { return a / b; }"
    assert run(src, "f", [0xFFFFFFF0, 16]) == 0xFFFFFFF0 // 16


def test_shift_semantics():
    src = "int f(int a) { return (a << 4) >> 2; }"
    assert signed(run(src, "f", [-8 & 0xFFFFFFFF])) == (-8 << 4) >> 2


def test_unary_ops():
    assert signed(run("int f(int a) { return -a; }", "f", [5])) == -5
    assert run("int f(int a) { return !a; }", "f", [5]) == 0
    assert run("int f(int a) { return !a; }", "f", [0]) == 1
    assert signed(run("int f(int a) { return ~a; }", "f", [5])) == ~5


def test_comparisons_and_logic():
    src = "int f(int a, int b) { return (a > b && a > 0) || b == 7; }"
    assert run(src, "f", [5, 3]) == 1
    assert run(src, "f", [1, 7]) == 1
    assert run(src, "f", [0, 3]) == 0


def test_ternary():
    src = "int f(int a) { return a > 10 ? 100 : 200; }"
    assert run(src, "f", [11]) == 100
    assert run(src, "f", [10]) == 200


def test_compound_assignment():
    src = "int f(int a) { a += 3; a *= 2; a -= 1; a /= 3; return a; }"
    assert run(src, "f", [6]) == ((6 + 3) * 2 - 1) // 3


def test_pre_post_increment():
    src = "int f() { int i = 5; int a = i++; int b = ++i; return a * 100 + b * 10 + i; }"
    assert run(src, "f") == 5 * 100 + 7 * 10 + 7


def test_mixed_int_double_promotion():
    src = "double f(int a, double b) { return a + b * 2; }"
    assert run(src, "f", [3, 1.5]) == 6.0


def test_float_vs_double_precision():
    src = "float f() { return 0.1f + 0.2f; }"
    result = run(src, "f")
    assert result == np.float32(np.float32(0.1) + np.float32(0.2))


def test_int_to_double_conversion_in_condition():
    src = "int f(double x) { if (x) { return 1; } return 0; }"
    assert run(src, "f", [0.5]) == 1
    assert run(src, "f", [0.0]) == 0


def test_arrays_and_pointers():
    data = np.arange(16, dtype=np.int32)
    src = "int f(int a[16]) { int *p = a + 4; return p[1] + *p + a[0]; }"
    assert run(src, "f", [data]) == 5 + 4 + 0


def test_local_2d_array():
    src = """
    int f() {
      int m[3][4];
      for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 4; j++) { m[i][j] = i * 10 + j; }
      }
      return m[2][3];
    }
    """
    assert run(src, "f") == 23


def test_2d_array_param():
    grid = np.arange(32, dtype=np.float64).reshape(4, 8)
    src = "double f(double g[4][8]) { return g[2][5]; }"
    assert run(src, "f", [grid]) == 21.0


def test_write_through_param(rng):
    data = np.zeros(8, dtype=np.float64)
    src = "void f(double out[8]) { for (int i = 0; i < 8; i++) { out[i] = i * 0.5; } }"
    result = run(src, "f", [data], read_back=data)
    assert np.allclose(result, np.arange(8) * 0.5)


def test_math_builtins():
    src = "double f(double x) { return sqrt(x) + pow(2.0, 3.0) + fmax(x, 100.0); }"
    assert run(src, "f", [25.0]) == 5.0 + 8.0 + 100.0


def test_min_max_lowered_to_select():
    src = "int f(int a, int b) { return min(a, b) * 100 + max(a, b); }"
    assert run(src, "f", [3, 9]) == 309


def test_break_continue():
    src = """
    int f() {
      int s = 0;
      for (int i = 0; i < 100; i++) {
        if (i % 2 == 0) { continue; }
        if (i > 10) { break; }
        s += i;
      }
      return s;
    }
    """
    assert run(src, "f") == 1 + 3 + 5 + 7 + 9


def test_while_and_do_while():
    src = """
    int f(int n) {
      int i = 0;
      while (i * i < n) { i++; }
      int j = 0;
      do { j++; } while (j < 3);
      return i * 10 + j;
    }
    """
    assert run(src, "f", [17]) == 53


def test_scoping_and_shadowing():
    src = """
    int f() {
      int x = 1;
      { int x = 2; { int x = 3; } }
      return x;
    }
    """
    assert run(src, "f") == 1


def test_char_type_width():
    src = "int f() { char c = 200; return c; }"  # i8 wraps: 200 -> -56
    assert signed(run(src, "f")) == to_signed(200, __import__("repro.ir.types", fromlist=["I8"]).I8)


def test_undeclared_identifier():
    with pytest.raises(CodegenError):
        compile_c("int f() { return nope; }")


def test_call_unknown_function():
    with pytest.raises(CodegenError):
        compile_c("int f() { return g(1); }")


def test_break_outside_loop():
    with pytest.raises(CodegenError):
        compile_c("void f() { break; }")


def test_return_value_from_void():
    with pytest.raises(CodegenError):
        compile_c("void f() { return 1; }")


def test_assign_to_rvalue():
    with pytest.raises(CodegenError):
        compile_c("void f(int a) { (a + 1) = 2; }")


def test_missing_return_defaults_to_zero():
    assert run("int f() { }", "f") == 0
