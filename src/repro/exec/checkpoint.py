"""Durable sweep checkpoints: resume a half-done sweep, not restart it.

A long DSE sweep killed at point 700 of 1000 should re-execute 300
points, not 1000.  The `RunCache` already gives this *when it is
durable and attached*; `SweepCheckpoint` covers the rest — it is a
tiny append-only JSONL file recording every completed point as
``{"key": <run-cache key>, "payload": <RunResult.to_dict()>}``, and a
restarted sweep loads it and skips every key it already holds.

Rows are keyed by the full run-cache key — the content hash of
(kernel, seed, every accelerator knob, pass pipeline) — so two sweeps
whose parameter dicts happen to collide can never steal each other's
rows, and a checkpoint file is safely shareable between an in-memory
cache run and a cached one.

Failure handling mirrors `RunCache`:

* appends are single flushed ``write()`` calls under a lock —
  concurrent writers never interleave partial lines;
* a truncated or corrupt tail (the crash happened mid-append) is
  quarantined to ``<name>.corrupt`` and the file rewritten to its
  parsable prefix — load never raises on a damaged file;
* only *successful* points are recorded: a failed point stays
  re-runnable on resume.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Optional, Union


class SweepCheckpoint:
    """Append-only JSONL record of completed sweep points."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._seen: set = set()
        self.quarantined = 0
        self.write_errors = 0
        #: Rows successfully loaded by the last `load()`.
        self.loaded = 0
        #: Points the last `ParallelSweep.run` skipped thanks to this
        #: checkpoint (set by the sweep, reported by the CLI).
        self.resumed = 0

    @classmethod
    def coerce(cls, value) -> Optional["SweepCheckpoint"]:
        """None | path-like | SweepCheckpoint -> SweepCheckpoint | None."""
        if value is None:
            return None
        if isinstance(value, cls):
            return value
        return cls(value)

    # -- reading -------------------------------------------------------
    def load(self) -> dict:
        """``{key: payload}`` for every parsable row; damaged tails are
        quarantined (never raised)."""
        rows: dict = {}
        try:
            raw = self.path.read_bytes()
        except OSError:
            return rows
        good_lines: list = []
        bad_tail = b""
        offset = 0
        for line in raw.splitlines(keepends=True):
            stripped = line.strip()
            if stripped:
                try:
                    row = json.loads(stripped)
                    key = row["key"]
                    payload = row["payload"]
                    if not isinstance(key, str) or not isinstance(payload,
                                                                  dict):
                        raise ValueError("malformed checkpoint row")
                except (ValueError, KeyError, TypeError,
                        UnicodeDecodeError):
                    bad_tail = raw[offset:]
                    break
                rows[key] = payload
                good_lines.append(stripped + b"\n")
            offset += len(line)
        else:
            if raw and not raw.endswith(b"\n"):
                self._rewrite(good_lines)
        if bad_tail:
            self.quarantined += 1
            try:
                with open(self.path.parent / (self.path.name + ".corrupt"),
                          "ab") as fh:
                    fh.write(bad_tail)
            except OSError:
                pass
            self._rewrite(good_lines)
        self._seen = set(rows)
        self.loaded = len(rows)
        return rows

    # -- writing -------------------------------------------------------
    def record(self, key: str, payload: dict) -> None:
        """Append one completed point (idempotent per key, never raises)."""
        with self._lock:
            if key in self._seen:
                return
            line = json.dumps({"key": key, "payload": payload},
                              sort_keys=True, separators=(",", ":"),
                              default=str) + "\n"
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(line)
                    fh.flush()
            except OSError:
                self.write_errors += 1
                return
            self._seen.add(key)

    def _rewrite(self, good_lines: list) -> None:
        """Replace the file with its parsable prefix (atomic)."""
        tmp = self.path.parent / f"{self.path.name}.tmp{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                fh.writelines(good_lines)
            os.replace(tmp, self.path)
        except OSError:
            self.write_errors += 1
