"""Module / Function / BasicBlock structure."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import I32, VOID


def test_block_append_and_terminator():
    f = Function("f")
    block = f.add_block("entry")
    b = IRBuilder(block)
    b.ret()
    assert block.is_terminated
    with pytest.raises(ValueError):
        b.ret()  # appending after a terminator


def test_cfg_edges():
    f = Function("f")
    entry, loop, out = f.add_block("entry"), f.add_block("loop"), f.add_block("out")
    b = IRBuilder(entry)
    b.br(loop)
    b.position_at_end(loop)
    cond = b.icmp("slt", b.const(I32, 0), b.const(I32, 1))
    b.cbr(cond, loop, out)
    b.position_at_end(out)
    b.ret()
    assert entry.successors() == [loop]
    assert set(x.name for x in loop.successors()) == {"loop", "out"}
    assert set(x.name for x in loop.predecessors()) == {"entry", "loop"}
    assert out.predecessors() == [loop]


def test_conditional_branch_same_target_dedup():
    f = Function("f")
    a, b_ = f.add_block("a"), f.add_block("b")
    builder = IRBuilder(a)
    cond = builder.icmp("eq", builder.const(I32, 1), builder.const(I32, 1))
    builder.cbr(cond, b_, b_)
    assert a.successors() == [b_]


def test_entry_requires_blocks():
    f = Function("f")
    with pytest.raises(ValueError):
        f.entry


def test_block_named_lookup():
    f = Function("f")
    f.add_block("x")
    assert f.block_named("x").name == "x"
    with pytest.raises(KeyError):
        f.block_named("nope")


def test_unique_names_are_unique():
    f = Function("f")
    names = {f.unique_name() for _ in range(100)}
    assert len(names) == 100


def test_module_function_registry():
    m = Module("m")
    f = Function("f")
    m.add_function(f)
    assert m.get_function("f") is f
    with pytest.raises(ValueError):
        m.add_function(Function("f"))
    with pytest.raises(KeyError):
        m.get_function("g")


def test_instruction_count_and_iteration():
    f = Function("f")
    block = f.add_block("entry")
    b = IRBuilder(block)
    b.add(b.const(I32, 1), b.const(I32, 2))
    b.ret()
    assert f.instruction_count() == 2
    assert len(list(f.instructions())) == 2


def test_arg_named():
    f = Function("f", VOID, [(I32, "n")])
    assert f.arg_named("n").type == I32
    with pytest.raises(KeyError):
        f.arg_named("missing")


def test_remove_instruction_and_block():
    f = Function("f")
    block = f.add_block("entry")
    b = IRBuilder(block)
    inst = b.add(b.const(I32, 1), b.const(I32, 2))
    b.ret()
    block.remove(inst)
    assert len(block) == 1
    f.remove_block(block)
    assert not f.blocks
