#!/usr/bin/env python
"""Quickstart: model one accelerator end to end.

Write the accelerator as a C function, pick a memory configuration,
stage data, run, and read back timing / power / area / occupancy — the
whole gem5-SALAM flow in ~40 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DeviceConfig, StandaloneAccelerator

KERNEL = """
void saxpy(double x[256], double y[256], double alpha_arr[1]) {
  double alpha = alpha_arr[0];
  #pragma unroll 4
  for (int i = 0; i < 256; i++) {
    y[i] = alpha * x[i] + y[i];
  }
}
"""


def main() -> None:
    config = DeviceConfig(
        clock_freq_hz=100e6,   # 10 ns accelerator cycle
        read_ports=4,          # memory issue widths
        write_ports=2,
    )
    acc = StandaloneAccelerator(
        KERNEL, "saxpy", config=config, memory="spm", spm_bytes=1 << 13,
        spm_read_ports=4, spm_write_ports=2,
    )

    rng = np.random.default_rng(42)
    x = rng.uniform(-1.0, 1.0, 256)
    y = rng.uniform(-1.0, 1.0, 256)
    alpha = np.array([2.5])
    px, py, pa = acc.alloc_array(x), acc.alloc_array(y), acc.alloc_array(alpha)

    result = acc.run([px, py, pa])

    out = acc.read_array(py, np.float64, 256)
    assert np.allclose(out, 2.5 * x + y), "simulation produced wrong data!"

    print("kernel verified against NumPy")
    print(f"cycles          : {result.cycles}")
    print(f"runtime         : {result.runtime_ns / 1e3:.2f} us")
    print(f"total power     : {result.power.total_mw:.3f} mW")
    print(f"datapath area   : {result.area.datapath_um2 / 1e3:.1f} kum^2")
    print(f"functional units: {result.fu_counts}")
    print(f"issue fraction  : {result.occupancy.issue_fraction():.2%}")
    print(f"stall fraction  : {result.occupancy.stall_fraction():.2%}")
    print("\npower breakdown (% of total):")
    for category, share in result.power.breakdown_percent().items():
        print(f"  {category:28s} {share:6.2f}%")

    # The same lifecycle, packaged: `repro.exec.SimContext` owns the
    # build -> stage -> run -> collect phases (and run_standalone is a
    # one-call shim over it) — that's the API the sweeps, the CLI, and
    # the benchmarks go through.
    from repro.exec import SimContext

    def stage(acc):
        return [acc.alloc_array(x), acc.alloc_array(y), acc.alloc_array(alpha)]

    ctx = SimContext.from_source(
        KERNEL, "saxpy", stage, config=config, memory="spm",
        spm_bytes=1 << 13, spm_read_ports=4, spm_write_ports=2,
    )
    assert ctx.run().cycles == result.cycles
    print("\nexecution-layer SimContext reproduces the run exactly")


if __name__ == "__main__":
    main()
