"""Functional IR interpreter.

Executes a function over a :class:`MemoryImage`, producing the golden
result and (optionally) a dynamic instruction trace.  The trace hook is
what the Aladdin-style baseline simulator uses for trace generation; the
SALAM runtime engine does *not* use the interpreter — it executes the IR
itself, cycle by cycle — but both share `repro.ir.semantics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.memory import MemoryImage
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.semantics import (
    eval_binop,
    eval_cast,
    eval_fcmp,
    eval_icmp,
    eval_intrinsic,
    gep_address,
    signed_operand,
)
from repro.ir.values import Argument, Constant, Instruction, Value


class InterpreterError(RuntimeError):
    pass


@dataclass
class TraceRecord:
    """One executed dynamic instruction (consumed by the trace-based baseline)."""

    seq: int
    inst: Instruction
    result: object
    address: Optional[int] = None
    size: int = 0
    block: str = ""


@dataclass
class ExecutionResult:
    return_value: object
    dynamic_instructions: int
    opcode_counts: dict = field(default_factory=dict)
    blocks_executed: int = 0


class Interpreter:
    """Executes IR functions functionally."""

    def __init__(
        self,
        module: Module,
        memory: MemoryImage,
        max_instructions: int = 50_000_000,
        trace_hook: Optional[Callable[[TraceRecord], None]] = None,
    ) -> None:
        self.module = module
        self.memory = memory
        self.max_instructions = max_instructions
        self.trace_hook = trace_hook
        # Called with the BasicBlock on every dynamic block entry.
        self.block_hook = None
        self._seq = 0
        # Stack for allocas lives at the top of the memory image.
        self._stack_ptr = memory.base + memory.size

    # ------------------------------------------------------------------
    def run(self, func_name: str, args: list) -> ExecutionResult:
        func = self.module.get_function(func_name)
        opcode_counts: dict[str, int] = {}
        blocks = [0]
        value = self._run_function(func, args, opcode_counts, blocks)
        return ExecutionResult(
            return_value=value,
            dynamic_instructions=self._seq,
            opcode_counts=opcode_counts,
            blocks_executed=blocks[0],
        )

    # ------------------------------------------------------------------
    def _alloca_alloc(self, size: int) -> int:
        self._stack_ptr -= size
        self._stack_ptr -= self._stack_ptr % 8
        if self._stack_ptr < self.memory.base:
            raise InterpreterError("interpreter stack overflow")
        return self._stack_ptr

    def _run_function(self, func: Function, args: list, opcode_counts, blocks) -> object:
        if len(args) != len(func.args):
            raise InterpreterError(
                f"{func.name}: expected {len(func.args)} args, got {len(args)}"
            )
        env: dict[Value, object] = dict(zip(func.args, args))
        block = func.entry
        prev_block: Optional[BasicBlock] = None
        while True:
            blocks[0] += 1
            if self.block_hook is not None:
                self.block_hook(block)
            # Phis are evaluated in parallel against the incoming edge.
            phi_updates = {}
            for inst in block.instructions:
                if not isinstance(inst, Phi):
                    break
                if prev_block is None:
                    raise InterpreterError(f"phi {inst.ref} in entry block")
                phi_updates[inst] = self._value_of(inst.incoming_for(prev_block), env)
            env.update(phi_updates)
            for inst in phi_updates:
                self._trace(inst, env[inst], block)
                self._count(inst, opcode_counts)

            for inst in block.non_phi_instructions():
                if isinstance(inst, Branch):
                    self._count(inst, opcode_counts)
                    if inst.is_conditional:
                        cond = self._value_of(inst.condition, env)
                        target = inst.true_target if cond else inst.false_target
                    else:
                        target = inst.true_target
                    self._trace(inst, None, block)
                    prev_block, block = block, target
                    break
                if isinstance(inst, Ret):
                    self._count(inst, opcode_counts)
                    self._trace(inst, None, block)
                    if inst.return_value is not None:
                        return self._value_of(inst.return_value, env)
                    return None
                self._execute(inst, env, block, opcode_counts)
            else:
                raise InterpreterError(f"block '{block.name}' fell through without terminator")

    # ------------------------------------------------------------------
    def _count(self, inst: Instruction, opcode_counts: dict) -> None:
        self._seq += 1
        if self._seq > self.max_instructions:
            raise InterpreterError("dynamic instruction limit exceeded")
        opcode_counts[inst.opcode] = opcode_counts.get(inst.opcode, 0) + 1

    def _trace(self, inst, result, block, address=None, size=0) -> None:
        if self.trace_hook is not None:
            self.trace_hook(
                TraceRecord(self._seq, inst, result, address=address, size=size, block=block.name)
            )

    def _value_of(self, value: Value, env: dict) -> object:
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, (Argument, Instruction)):
            if value not in env:
                raise InterpreterError(f"use of undefined value {value.ref}")
            return env[value]
        raise InterpreterError(f"cannot evaluate operand {value!r}")

    def _execute(self, inst: Instruction, env: dict, block: BasicBlock, opcode_counts) -> None:
        self._count(inst, opcode_counts)
        address = None
        size = 0
        if isinstance(inst, BinaryOp):
            a = self._value_of(inst.lhs, env)
            b = self._value_of(inst.rhs, env)
            result = eval_binop(inst.opcode, inst.type, a, b)
        elif isinstance(inst, ICmp):
            a = self._value_of(inst.operands[0], env)
            b = self._value_of(inst.operands[1], env)
            result = eval_icmp(inst.pred, inst.operands[0].type, a, b)
        elif isinstance(inst, FCmp):
            a = self._value_of(inst.operands[0], env)
            b = self._value_of(inst.operands[1], env)
            result = eval_fcmp(inst.pred, a, b)
        elif isinstance(inst, Select):
            cond, tv, fv = (self._value_of(op, env) for op in inst.operands)
            result = tv if cond else fv
        elif isinstance(inst, Cast):
            result = eval_cast(
                inst.opcode, inst.src.type, inst.type, self._value_of(inst.src, env)
            )
        elif isinstance(inst, Alloca):
            size = inst.allocated_type.size_bytes()
            result = self._alloca_alloc(size)
            address = result
        elif isinstance(inst, Load):
            address = self._value_of(inst.pointer, env)
            size = inst.type.size_bytes()
            result = self.memory.read_value(address, inst.type)
        elif isinstance(inst, Store):
            address = self._value_of(inst.pointer, env)
            value = self._value_of(inst.value, env)
            size = inst.value.type.size_bytes()
            self.memory.write_value(address, value, inst.value.type)
            result = None
        elif isinstance(inst, GetElementPtr):
            base = self._value_of(inst.pointer, env)
            indices = [
                signed_operand(self._value_of(idx, env), idx.type) for idx in inst.indices
            ]
            result = gep_address(inst, base, indices)
        elif isinstance(inst, Call):
            args = [self._value_of(a, env) for a in inst.operands]
            if inst.is_intrinsic:
                result = eval_intrinsic(inst.callee, inst.type, args)
            else:
                callee = self.module.get_function(inst.callee)
                sub_counts: dict[str, int] = {}
                blocks = [0]
                result = self._run_function(callee, args, opcode_counts, blocks)
        else:
            raise InterpreterError(f"unsupported instruction '{inst.opcode}'")

        if inst.produces_value:
            env[inst] = result
        self._trace(inst, result, block, address=address, size=size)
