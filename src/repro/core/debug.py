"""Pipeline tracing (Sec. III-C2's per-cycle scheduling log).

The paper: "During the dynamic runtime simulation gem5-SALAM logs which
instructions are scheduled or in-flight for each cycle."  When a
:class:`PipelineTrace` is attached to a `RuntimeEngine`, every issue and
commit is recorded with its cycle; the trace renders either as an event
log or as a compact waterfall (one row per dynamic instruction, one
column per cycle) for small kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class TraceEvent:
    cycle: int
    kind: str          # 'issue' | 'commit' | 'fetch'
    seq: int
    opcode: str
    detail: str = ""


@dataclass
class PipelineTrace:
    max_events: int = 100_000
    events: list[TraceEvent] = field(default_factory=list)
    truncated: bool = False

    def record(self, cycle: int, kind: str, seq: int, opcode: str, detail: str = "") -> None:
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append(TraceEvent(cycle, kind, seq, opcode, detail))

    # ------------------------------------------------------------------
    def issues_at(self, cycle: int) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "issue" and e.cycle == cycle]

    def lifetime(self, seq: int) -> tuple[Optional[int], Optional[int]]:
        """(issue_cycle, commit_cycle) of one dynamic instruction."""
        issue = commit = None
        for event in self.events:
            if event.seq == seq:
                if event.kind == "issue":
                    issue = event.cycle
                elif event.kind == "commit":
                    commit = event.cycle
        return issue, commit

    def log_text(self, limit: int = 200) -> str:
        lines = [
            f"cycle {e.cycle:6d}  {e.kind:6s}  #{e.seq:<5d} {e.opcode:14s} {e.detail}"
            for e in self.events[:limit]
        ]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        if self.truncated:
            lines.append("(trace truncated at max_events)")
        return "\n".join(lines)

    def waterfall(self, max_rows: int = 64, max_cols: int = 120) -> str:
        """ASCII waterfall: '=' from issue to commit per instruction."""
        spans: dict[int, list] = {}
        opcodes: dict[int, str] = {}
        for event in self.events:
            entry = spans.setdefault(event.seq, [None, None])
            if event.kind == "issue":
                entry[0] = event.cycle
            elif event.kind == "commit":
                entry[1] = event.cycle
            opcodes.setdefault(event.seq, event.opcode)
        rows = sorted(spans)[:max_rows]
        if not rows:
            return "(empty trace)"
        base = min(s[0] for s in spans.values() if s[0] is not None)
        lines = []
        for seq in rows:
            start, end = spans[seq]
            if start is None:
                continue
            end = end if end is not None else start
            left = start - base
            width = min(max_cols, end - base + 1)
            bar = " " * min(left, max_cols) + "=" * max(1, width - left)
            lines.append(f"#{seq:<5d} {opcodes[seq]:12s} |{bar[:max_cols]}")
        header = f"(cycles {base}..{base + max_cols - 1})"
        return header + "\n" + "\n".join(lines)


def attach_trace(engine, max_events: int = 100_000) -> PipelineTrace:
    """Wrap an engine's issue/commit paths with trace recording."""
    trace = PipelineTrace(max_events=max_events)
    original_try_issue = engine._try_issue
    original_commit = engine._commit

    def traced_try_issue(dyn, cycle, issued_classes, issued_kinds):
        done = original_try_issue(dyn, cycle, issued_classes, issued_kinds)
        if done:
            detail = ""
            if dyn.addr is not None:
                detail = f"addr={dyn.addr:#x}"
            trace.record(cycle, "issue", dyn.seq, dyn.node.inst.opcode, detail)
        return done

    def traced_commit(dyn, result):
        trace.record(
            engine.cur_cycle, "commit", dyn.seq, dyn.node.inst.opcode,
            "" if result is None else f"-> {result!r}"[:40],
        )
        original_commit(dyn, result)

    engine._try_issue = traced_try_issue
    engine._commit = traced_commit
    engine.pipeline_trace = trace
    return trace
