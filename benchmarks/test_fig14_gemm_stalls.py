"""Fig. 14 — GEMM stall breakdown vs read/write ports.

(a) fraction of stalled vs new-execution cycles as memory bandwidth
(read/write ports) grows; (b) the stall-source breakdown (which kinds
of unfinished operations stalled cycles were waiting on).

Expected shape: stalls shrink as ports grow, with diminishing returns
once bandwidth exceeds the datapath's width; stalls are dominated by
loads+computation, with load+store+computation combinations appearing
at low port counts.
"""

import numpy as np

from conftest import SEED, save_and_print
from repro.core.config import DeviceConfig
from repro.dse import format_table
from repro.system.soc import StandaloneAccelerator
from repro.workloads import get_workload

PORTS = [64, 32, 16, 8, 4]


def _run_with_ports(ports):
    workload = get_workload("gemm_dse")
    config = DeviceConfig(read_ports=ports, write_ports=ports)
    acc = StandaloneAccelerator(
        workload.source, workload.func_name, config=config, unroll_factor=8,
        memory="spm", spm_bytes=1 << 15, spm_read_ports=ports, spm_write_ports=ports,
    )
    data = workload.make_data(np.random.default_rng(SEED))
    args, addresses = workload.stage(acc, data)
    result = acc.run(args)
    workload.verify(acc, addresses, data)
    return result


def test_fig14(benchmark):
    def run():
        rows = []
        for ports in PORTS:
            result = _run_with_ports(ports)
            occ = result.occupancy
            row = {
                "ports": ports,
                "cycles": result.cycles,
                "stalled_pct": 100 * occ.entry_stall_fraction(),
                "new_exec_pct": 100 * (1 - occ.entry_stall_fraction()),
            }
            for source, share in sorted(occ.blocked_breakdown().items()):
                row[f"stall[{source}]"] = 100 * share
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print(
        "fig14_gemm_stalls",
        format_table(rows, title="Fig. 14: GEMM stalls vs read/write ports",
                     float_fmt="{:.2f}"),
    )

    by_ports = {r["ports"]: r for r in rows}
    # (a) more ports -> fewer cycles and no more stalling.
    assert by_ports[64]["cycles"] <= by_ports[4]["cycles"]
    assert by_ports[64]["stalled_pct"] <= by_ports[4]["stalled_pct"] + 1e-9
    # Diminishing returns at the top end (64 vs 32 nearly identical).
    top_gain = (by_ports[32]["cycles"] - by_ports[64]["cycles"]) / by_ports[32]["cycles"]
    low_gain = (by_ports[4]["cycles"] - by_ports[8]["cycles"]) / by_ports[4]["cycles"]
    assert top_gain <= low_gain + 0.02
    # (b) stall sources involve loads and computation.
    load_keys = [k for k in rows[-1] if k.startswith("stall[") and "load" in k]
    assert load_keys, "low-port run must report load-related stalls"
