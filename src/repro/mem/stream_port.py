"""Stream port: memory-mapped window onto a stream buffer.

Lets an accelerator's ordinary loads/stores speak the AXI-Stream-style
handshake: a read of the window pops the next token (stalling, i.e.
withholding the response, while the FIFO is empty); a write pushes a
token (stalling while it is full).  Requests are serviced strictly in
arrival order, preserving stream semantics even with multiple
outstanding accesses.
"""

from __future__ import annotations

from collections import deque

from repro.mem.stream_buffer import StreamBuffer
from repro.sim.packet import MemCmd, Packet
from repro.sim.ports import SlavePort
from repro.sim.simobject import AddrRange, SimObject, System


class StreamPort(SimObject):
    def __init__(
        self,
        name: str,
        system: System,
        buffer: StreamBuffer,
        base: int,
        clock=None,
    ) -> None:
        super().__init__(name, system, clock)
        self.buffer = buffer
        self.range = AddrRange(base, max(8, buffer.token_bytes))
        self.port = SlavePort(
            f"{name}.port",
            recv_timing_req=self._recv_timing_req,
            recv_functional=self._recv_functional,
            owner=self,
        )
        self._readers: deque[Packet] = deque()
        self._writers: deque[Packet] = deque()
        self.stat_reads = self.stats.scalar("pops")
        self.stat_writes = self.stats.scalar("pushes")

    # Functional access makes no sense for a stream; expose zeroes so
    # debug tooling does not crash.
    def _recv_functional(self, pkt: Packet) -> Packet:
        if pkt.cmd is MemCmd.READ:
            return pkt.make_response(data=bytes(pkt.size))
        return pkt.make_response()

    def _recv_timing_req(self, pkt: Packet) -> bool:
        if pkt.size != self.buffer.token_bytes:
            raise ValueError(
                f"{self.name}: stream access must be token-sized "
                f"({self.buffer.token_bytes}B), got {pkt.size}B"
            )
        if pkt.is_read:
            self._readers.append(pkt)
            self._drain_reads()
        else:
            self._writers.append(pkt)
            self._drain_writes()
        return True

    # -- pops ---------------------------------------------------------------
    def _drain_reads(self) -> None:
        while self._readers:
            token = self.buffer.try_pop()
            if token is None:
                self.buffer.on_data(self._drain_reads)
                return
            pkt = self._readers.popleft()
            self.stat_reads.inc()
            if self._san is not None and pkt.agent is not None:
                # Popping a token is the acquire half of the FIFO
                # handoff: the popper inherits everything the pusher
                # published.
                self._san.acquire(pkt.agent, ("stream", self.buffer.name))
            resp = pkt.make_response(data=token)
            self.eventq.schedule_callback(
                lambda r=resp: self.port.send_timing_resp(r),
                self.clock_edge(1),
                name=f"{self.name}.pop",
            )

    # -- pushes ----------------------------------------------------------------
    def _drain_writes(self) -> None:
        while self._writers:
            if not self.buffer.try_push(self._writers[0].data):
                self.buffer.on_space(self._drain_writes)
                return
            pkt = self._writers.popleft()
            self.stat_writes.inc()
            if self._san is not None and pkt.agent is not None:
                self._san.release(pkt.agent, ("stream", self.buffer.name))
            resp = pkt.make_response()
            self.eventq.schedule_callback(
                lambda r=resp: self.port.send_timing_resp(r),
                self.clock_edge(1),
                name=f"{self.name}.push",
            )
