"""SimObject/System registry, address ranges, stats reports."""

import pytest

from repro.sim.simobject import AddrRange, SimObject, System


def test_addr_range_contains_overlaps():
    r = AddrRange(0x1000, 0x100)
    assert r.contains(0x1000)
    assert r.contains(0x10FF)
    assert r.contains(0x1000, 0x100)
    assert not r.contains(0x1000, 0x101)
    assert not r.contains(0xFFF)
    assert r.overlaps(AddrRange(0x10F0, 0x100))
    assert not r.overlaps(AddrRange(0x1100, 0x100))
    with pytest.raises(ValueError):
        AddrRange(0, 0)


def test_registry_and_duplicate_names(system):
    obj = SimObject("dev0", system)
    assert system["dev0"] is obj
    with pytest.raises(ValueError):
        SimObject("dev0", system)


def test_init_all_called_once(system):
    calls = []

    class Dev(SimObject):
        def init(self):
            calls.append(self.name)

    Dev("a", system)
    Dev("b", system)
    system.run()
    assert sorted(calls) == ["a", "b"]
    system.run()  # second run must not re-init
    assert len(calls) == 2


def test_stats_merged_across_objects(system):
    a = SimObject("a", system)
    b = SimObject("b", system)
    a.stats.scalar("hits").inc(3)
    b.stats.scalar("misses").inc(4)
    dump = system.dump_stats()
    assert dump["a.hits"] == 3
    assert dump["b.misses"] == 4
    report = system.stats_report()
    assert "a.hits" in report


def test_reset_stats(system):
    a = SimObject("a", system)
    stat = a.stats.scalar("x")
    stat.inc(9)
    system.reset_stats()
    assert stat.value() == 0


def test_cur_cycle_tracks_clock(system):
    obj = SimObject("a", system)
    seen = []
    obj.schedule_callback_in_cycles(lambda: seen.append(obj.cur_cycle), 7)
    system.run()
    assert seen == [7]


def test_system_run_forwards_max_events(system):
    for tick in (1, 2, 3, 4):
        system.eventq.schedule_callback(lambda: None, tick)
    assert system.run(max_events=2) == "max_events"
    assert system.eventq.events_fired == 2
    assert system.run() == "empty"


def test_system_reset_rewinds_and_reinitializes(system):
    inits = []

    class Dev(SimObject):
        def init(self):
            inits.append(self.name)

    dev = Dev("dev0", system)
    dev.stats.scalar("count").inc(5)
    system.eventq.schedule_callback(lambda: None, 100)
    system.run()
    assert system.cur_tick == 100
    assert inits == ["dev0"]

    system.reset()
    assert system.cur_tick == 0
    assert system.eventq.empty()
    assert system.dump_stats()["dev0.count"] == 0
    # init runs again on the next run: the system is genuinely reusable.
    system.eventq.schedule_callback(lambda: None, 7)
    system.run()
    assert inits == ["dev0", "dev0"]
    assert system.cur_tick == 7


def test_simobject_reset_hook_overridable(system):
    class Dev(SimObject):
        def __init__(self, name, system):
            super().__init__(name, system)
            self.queue = [1, 2, 3]

        def reset(self):
            super().reset()
            self.queue.clear()

    dev = Dev("dev0", system)
    dev.stats.scalar("count").inc(2)
    system.reset()
    assert dev.queue == []
    assert dev.stats["count"].value() == 0
