"""SimContext / Simulation lifecycle: build, run, reset, reuse, pickling."""

import json
import pickle

import numpy as np
import pytest

from repro.core.config import DeviceConfig
from repro.exec import RunCache, SimContext, Simulation
from repro.sim.simobject import System
from repro.system.soc import run_standalone
from repro.workloads import get_workload

KERNEL = """
void vecadd(double a[16], double b[16], double c[16]) {
  for (int i = 0; i < 16; i++) { c[i] = a[i] + b[i]; }
}
"""


def _gemm_context(**overrides):
    kwargs = dict(memory="spm", spm_bytes=1 << 15, unroll_factor=2)
    kwargs.update(overrides)
    return SimContext(get_workload("gemm_dse"), **kwargs)


def test_context_runs_and_verifies():
    ctx = _gemm_context()
    result = ctx.run()
    assert result.cycles > 0
    assert result.power.total_mw > 0
    assert ctx.accelerator is not None
    assert ctx.last_result is result


def test_context_reset_then_rerun_is_identical():
    ctx = _gemm_context()
    first = ctx.run()
    ctx.reset()
    assert ctx.accelerator is None
    second = ctx.run()
    assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
        second.to_dict(), sort_keys=True
    )


def test_context_rerun_without_reset_auto_resets():
    ctx = _gemm_context()
    first = ctx.run()
    second = ctx.run()
    assert first.cycles == second.cycles


def test_context_explicit_phases():
    ctx = _gemm_context()
    acc = ctx.build()
    args = ctx.stage()
    assert ctx.accelerator is acc
    assert len(args) == len(ctx.workload.arg_order)
    result = ctx.run()
    assert result.cycles > 0


def test_context_source_mode_matches_run_standalone():
    def build_args(acc):
        a = acc.alloc_array(np.arange(16.0))
        b = acc.alloc_array(np.ones(16))
        c = acc.alloc(16 * 8)
        return [a, b, c]

    ctx = SimContext.from_source(KERNEL, "vecadd", build_args,
                                 memory="spm", spm_bytes=1 << 13)
    direct = run_standalone(KERNEL, "vecadd", build_args,
                            memory="spm", spm_bytes=1 << 13)
    assert ctx.run().cycles == direct.cycles


def test_context_argument_validation():
    with pytest.raises(ValueError):
        SimContext()  # neither workload nor source
    with pytest.raises(ValueError):
        SimContext(get_workload("gemm_dse"), source=KERNEL, func_name="vecadd")
    with pytest.raises(ValueError):
        SimContext(source=KERNEL)  # func_name missing
    with pytest.raises(ValueError):
        SimContext.from_source(KERNEL, "vecadd", lambda acc: [],
                               cache=RunCache())  # caching needs workload mode


def test_context_is_picklable_before_and_after_run():
    ctx = _gemm_context(config=DeviceConfig(read_ports=4))
    clone = pickle.loads(pickle.dumps(ctx))
    reference = ctx.run()
    # After a run the live system is dropped from the pickle, but the
    # spec survives and reproduces the run exactly.
    revived = pickle.loads(pickle.dumps(ctx))
    assert revived.accelerator is None
    for other in (clone, revived):
        assert other.run().cycles == reference.cycles


def test_context_uses_cache():
    cache = RunCache()
    ctx = _gemm_context(cache=cache)
    first = ctx.run()
    assert cache.misses == 1 and cache.hits == 0
    again = ctx.run()
    assert cache.hits == 1
    assert again.cycles == first.cycles
    # A fresh context with the same spec also hits.
    other = _gemm_context(cache=cache)
    assert other.run().cycles == first.cycles
    assert cache.hits == 2


# -- Simulation wrapper ------------------------------------------------------
def test_simulation_runs_and_resets():
    system = System("sim.test")
    fired = []
    system.eventq.schedule_callback(lambda: fired.append(1), 10)
    sim = Simulation(system)
    assert sim.run() == "empty"
    assert sim.exit_cause == "empty"
    assert fired == [1]
    assert sim.cur_tick == 10
    sim.reset()
    assert sim.exit_cause is None
    assert system.cur_tick == 0
    system.eventq.schedule_callback(lambda: fired.append(2), 5)
    assert sim.run() == "empty"
    assert fired == [1, 2]


def test_simulation_forwards_max_events():
    system = System("sim.limit")
    for tick in (1, 2, 3):
        system.eventq.schedule_callback(lambda: None, tick)
    sim = Simulation(system)
    assert sim.run(max_events=2) == "max_events"
    assert sim.run() == "empty"


def test_simulation_stats_report():
    system = System("sim.stats")
    sim = Simulation(system)
    assert sim.stats() == {}
    assert "sim.stats" in sim.report()
