"""Function inlining.

gem5-SALAM requires the accelerated kernel to be a *single in-lined
function* (Sec. III-A1) — calls to anything but math intrinsics cannot
reach the datapath.  This pass inlines every call to a module-local
function, bottom-up, so multi-function kernels can be written naturally
and still elaborate into one datapath.

Recursive functions cannot be inlined (no stack in the datapath) and
are reported as errors when ``require_complete`` is set.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.instructions import Branch, Call, Phi, Ret
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Instruction, Value
from repro.passes.pass_manager import FunctionPass
from repro.passes.unroll import clone_instruction


class InlineError(RuntimeError):
    pass


def _call_targets(func: Function, module: Module) -> set[str]:
    return {
        inst.callee
        for inst in func.instructions()
        if isinstance(inst, Call) and not inst.is_intrinsic
        and inst.callee in module.functions
    }


def _is_recursive(name: str, module: Module, visiting: Optional[set] = None) -> bool:
    visiting = visiting or set()
    if name in visiting:
        return True
    visiting = visiting | {name}
    func = module.functions.get(name)
    if func is None:
        return False
    return any(
        _is_recursive(callee, module, visiting)
        for callee in _call_targets(func, module)
    )


def inline_call(caller: Function, call: Call, module: Module) -> None:
    """Inline one call site into ``caller``."""
    callee = module.get_function(call.callee)
    block = call.parent
    call_index = block.instructions.index(call)

    # Split the caller block: instructions after the call move to a
    # continuation block.
    continuation = BasicBlock(caller.unique_name(f"{call.callee}.cont"), caller)
    tail = block.instructions[call_index + 1 :]
    block.instructions = block.instructions[:call_index]
    for inst in tail:
        inst.parent = continuation
        continuation.instructions.append(inst)
    # Successor phis referenced the original block as predecessor.
    for succ in continuation.successors():
        for phi in succ.phis():
            phi.incoming = [
                (v, continuation if p is block else p) for v, p in phi.incoming
            ]

    # Clone the callee body with arguments substituted.
    value_map: dict[Value, Value] = dict(zip(callee.args, call.operands))
    block_map: dict[BasicBlock, BasicBlock] = {}
    for src_block in callee.blocks:
        block_map[src_block] = BasicBlock(
            caller.unique_name(f"{call.callee}.{src_block.name}"), caller
        )

    returns: list[tuple[Value, BasicBlock]] = []  # (value, returning block)
    phi_todo: list[tuple[Phi, Phi]] = []
    for src_block in callee.blocks:
        new_block = block_map[src_block]
        for inst in src_block.instructions:
            if isinstance(inst, Ret):
                value = inst.return_value
                if value is not None:
                    value = value_map.get(value, value)
                returns.append((value, new_block))
                terminator = Branch(continuation)
                terminator.parent = new_block
                new_block.instructions.append(terminator)
                continue
            if isinstance(inst, Phi):
                clone: Instruction = Phi(inst.type)
                phi_todo.append((inst, clone))
            else:
                clone = clone_instruction(inst, value_map, block_map)
            if clone.produces_value:
                clone.name = caller.unique_name(f"{inst.name}.in")
            clone.parent = new_block
            new_block.instructions.append(clone)
            value_map[inst] = clone
    for orig, clone in phi_todo:
        for value, pred in orig.incoming:
            clone.add_incoming(value_map.get(value, value), block_map.get(pred, pred))

    # Enter the inlined body.
    entry_branch = Branch(block_map[callee.entry])
    entry_branch.parent = block
    block.instructions.append(entry_branch)

    # Wire the return value into the continuation.
    if call.produces_value:
        if len(returns) == 1:
            replacement = returns[0][0]
        else:
            phi = Phi(call.type)
            phi.name = caller.unique_name(f"{call.callee}.ret")
            for value, ret_block in returns:
                phi.add_incoming(value, ret_block)
            continuation.insert(0, phi)
            replacement = phi
        for other in caller.blocks:
            for inst in other.instructions:
                if inst is not call:
                    inst.replace_operand(call, replacement)
        for inst in continuation.instructions:
            if inst is not call:
                inst.replace_operand(call, replacement)

    # Insert the new blocks right after the split point.
    insert_at = caller.blocks.index(block) + 1
    caller.blocks[insert_at:insert_at] = [block_map[b] for b in callee.blocks] + [
        continuation
    ]


class InlineFunctions(FunctionPass):
    """Inline all module-local calls in a function (recursively)."""

    name = "inline"

    def __init__(self, module: Module, require_complete: bool = True,
                 max_inlined_blocks: int = 10_000) -> None:
        self.module = module
        self.require_complete = require_complete
        self.max_inlined_blocks = max_inlined_blocks

    def run(self, func: Function) -> bool:
        changed = False
        while True:
            call = next(
                (
                    inst
                    for inst in func.instructions()
                    if isinstance(inst, Call)
                    and not inst.is_intrinsic
                    and inst.callee in self.module.functions
                ),
                None,
            )
            if call is None:
                return changed
            if _is_recursive(call.callee, self.module):
                if self.require_complete:
                    raise InlineError(
                        f"{func.name}: cannot inline recursive function "
                        f"'@{call.callee}' into a datapath"
                    )
                return changed
            if len(func.blocks) > self.max_inlined_blocks:
                raise InlineError(f"{func.name}: inlining exploded past the block budget")
            inline_call(func, call, self.module)
            changed = True
