"""Structured failure records for hardened execution.

When a sweep point crashes, hangs, or times out, the failure is folded
into a :class:`FailureRecord` instead of tearing down the whole sweep.
The record is a plain-data object (picklable, JSON-serializable) so it
can cross process-pool boundaries without exception pickling and land
in result CSVs/summaries untouched.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.eventq import SimulationHang

#: How many trailing traceback lines to keep on a record.
TRACEBACK_TAIL_LINES = 12


@dataclass
class FailureRecord:
    """Why one run failed: exception type, message, traceback tail."""

    error_type: str
    message: str
    traceback_tail: list = field(default_factory=list)
    attempts: int = 1
    #: Coarse classification: "crash" (exception), "hang" (deadlock or
    #: livelock watchdog trip), or "timeout" (wall-clock watchdog trip).
    reason: str = "crash"

    @classmethod
    def from_exception(cls, exc: BaseException, attempts: int = 1) -> "FailureRecord":
        tail = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ).splitlines()[-TRACEBACK_TAIL_LINES:]
        if isinstance(exc, SimulationHang):
            reason = "timeout" if exc.reason == "wallclock" else "hang"
        else:
            reason = "crash"
        return cls(
            error_type=type(exc).__name__,
            message=str(exc),
            traceback_tail=tail,
            attempts=attempts,
            reason=reason,
        )

    def summary(self) -> str:
        first_line = self.message.splitlines()[0] if self.message else ""
        return f"{self.error_type}: {first_line} (attempt {self.attempts})"

    def to_dict(self) -> dict:
        return {
            "error_type": self.error_type,
            "message": self.message,
            "traceback_tail": list(self.traceback_tail),
            "attempts": self.attempts,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FailureRecord":
        return cls(
            error_type=payload["error_type"],
            message=payload["message"],
            traceback_tail=list(payload.get("traceback_tail", [])),
            attempts=int(payload.get("attempts", 1)),
            reason=payload.get("reason", "crash"),
        )


class SweepPointError(RuntimeError):
    """Raised in ``strict`` mode when a sweep point fails."""

    def __init__(self, params: dict, failure: FailureRecord) -> None:
        self.params = dict(params)
        self.failure = failure
        super().__init__(f"sweep point {self.params} failed: {failure.summary()}")
