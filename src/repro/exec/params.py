"""The datapath/memory parameter partition — single source of truth.

The incremental re-simulation machinery (see DESIGN.md, "Incremental
re-simulation") rests on one fact: a kernel's dynamic schedule *content*
— the values every instruction computes, the branch outcomes, and the
resolved memory addresses — depends only on the datapath-side inputs
(kernel, dataset seed, pass pipeline, FU structure), never on the
memory-system timing.  Memory-side parameters change *when* things
happen, not *what* happens, so a `ScheduleTrace` captured once per
datapath configuration can be re-timed against any memory configuration
(`repro.engine.retime`).

This module declares which `StandaloneAccelerator` keyword argument
falls on which side.  Everything keys off these sets:

* `repro.exec.cache.run_cache_key` builds its two-level
  ``(datapath_key, memory_key)`` hash from `split_acc_kwargs`;
* `repro.engine.graph.graph_key` drops the memory-side `DeviceConfig`
  fields so compiled graphs are shared across memory-only sweeps;
* `ParallelSweep` groups grid points by datapath key and re-times
  within each group;
* `repro.analysis.partition` raises DEP204 when a sweep varies a
  parameter classified on neither side (those points silently fall back
  to full re-simulation).

A kwarg not in any set is treated as **datapath-side** by every
consumer: unknown parameters conservatively get their own trace (i.e.
a full simulation), never an unsound reuse.

`DeviceConfig` is special-cased: it is one object holding knobs from
both sides, so it is split field-wise (`split_device_config`) using
`CONFIG_DATAPATH_FIELDS` / `CONFIG_MEMORY_FIELDS`.
"""

from __future__ import annotations

from typing import Optional

#: `StandaloneAccelerator` kwargs that shape the datapath schedule:
#: they change computed values, branch outcomes, or resolved addresses,
#: so any difference here invalidates a captured `ScheduleTrace`.
#: (``config`` is split field-wise — see `CONFIG_DATAPATH_FIELDS`.)
DATAPATH_PARAMS = frozenset({
    "config",
    "profile",
    "unroll_factor",
})

#: Kwargs that only tune memory-system timing: the schedule trace is
#: invariant under any change confined to these, so sweep points that
#: differ only here share one datapath simulation and re-time the rest.
#: ``memory`` itself is memory-side: "spm" and "ideal" stage identical
#: addresses (same base, same allocator), and "cache" never reaches the
#: retimer at all (`resolve_engine` falls back to the dynamic engine).
MEMORY_PARAMS = frozenset({
    "memory",
    "spm_bytes",
    "spm_read_ports",
    "spm_write_ports",
    "spm_banks",
    "cache_kwargs",
    "dram_kwargs",
})

#: Execution machinery, not design points: never part of any cache key
#: (`run_cache_key` has always excluded these), so they are classified
#: here only to make the partition total over the accelerator's
#: signature — the property test asserts exactly-once coverage.
EXECUTION_PARAMS = frozenset({
    "artifact_store",
    "pipeline",
    "engine",
})

#: `DeviceConfig` fields that shape the datapath schedule (FU pools,
#: latencies, the clock the profile derives energies from, the
#: reservation window that bounds fetch).
CONFIG_DATAPATH_FIELDS = frozenset({
    "name",
    "clock_freq_hz",
    "fu_limits",
    "latency_overrides",
    "reservation_window",
})

#: `DeviceConfig` fields that only tune memory-interface timing: issue
#: widths, queue depths, and the ideal-memory switch.  None of them can
#: change a computed value or a resolved address — only cycle counts.
CONFIG_MEMORY_FIELDS = frozenset({
    "read_queue_size",
    "write_queue_size",
    "read_ports",
    "write_ports",
    "ideal_memory",
})


def classify_param(name: str) -> Optional[str]:
    """``"datapath"`` / ``"memory"`` / ``"execution"``, or None when the
    parameter is unclassified (consumers treat that as datapath-side)."""
    if name in DATAPATH_PARAMS:
        return "datapath"
    if name in MEMORY_PARAMS:
        return "memory"
    if name in EXECUTION_PARAMS:
        return "execution"
    return None


def split_device_config(config) -> tuple[dict, dict]:
    """Split a `DeviceConfig` (or its ``to_dict`` payload) field-wise.

    Returns ``(datapath_fields, memory_fields)`` as plain dicts.  An
    unknown field (a future knob added to `DeviceConfig` but not to the
    field sets above) lands on the datapath side — conservatively
    invalidating traces rather than unsoundly reusing them.
    """
    payload = config if isinstance(config, dict) else config.to_dict()
    datapath: dict = {}
    memory: dict = {}
    for field_name, value in payload.items():
        side = memory if field_name in CONFIG_MEMORY_FIELDS else datapath
        side[field_name] = value
    return datapath, memory


def split_acc_kwargs(acc_kwargs: dict) -> tuple[dict, dict, list[str]]:
    """Partition accelerator kwargs into ``(datapath, memory,
    unclassified)``.

    ``datapath`` and ``memory`` are the two halves of the two-level
    cache key (`repro.exec.cache.split_cache_key`); ``unclassified``
    names the kwargs that fell on the datapath side only because no
    declaration covers them (DEP204 material — see
    `repro.analysis.partition`).  Execution-machinery kwargs are
    dropped entirely, exactly as the flat key always excluded them.
    """
    datapath: dict = {}
    memory: dict = {}
    unclassified: list[str] = []
    for name in sorted(acc_kwargs):
        value = acc_kwargs[name]
        if name == "config" and value is not None:
            cfg_datapath, cfg_memory = split_device_config(value)
            datapath["config"] = cfg_datapath
            memory["config"] = cfg_memory
            continue
        side = classify_param(name)
        if side == "memory":
            memory[name] = value
        elif side == "execution":
            continue
        else:
            if side is None:
                unclassified.append(name)
            datapath[name] = value
    return datapath, memory, unclassified


__all__ = [
    "DATAPATH_PARAMS",
    "MEMORY_PARAMS",
    "EXECUTION_PARAMS",
    "CONFIG_DATAPATH_FIELDS",
    "CONFIG_MEMORY_FIELDS",
    "classify_param",
    "split_device_config",
    "split_acc_kwargs",
]
