"""Concurrent writers on the content-addressed caches.

The job server shares one `RunCache`/`ArtifactStore` across worker
threads, and parallel sweeps share the on-disk mirrors across
processes.  Many writers racing on the *same* key is therefore a
normal Tuesday: every `put` must land atomically (temp + rename), every
subsequent `get` must return a valid entry, and nothing may end up
quarantined.
"""

import threading

import pytest

from repro.build import ArtifactStore, build_module
from repro.core.config import DeviceConfig
from repro.exec import RunCache, SimContext
from repro.exec.cache import run_cache_key
from repro.workloads import get_workload

THREADS = 8


@pytest.fixture(scope="module")
def run_result():
    """One real RunResult to hammer the cache with."""
    return SimContext(get_workload("gemm_dse"),
                      config=DeviceConfig(read_ports=2), memory="spm",
                      spm_bytes=1 << 16).run()


def hammer(fn):
    """Run ``fn`` from THREADS threads released by a barrier at once."""
    barrier = threading.Barrier(THREADS)
    errors = []

    def worker():
        try:
            barrier.wait()
            fn()
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker) for __ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors


def test_runcache_concurrent_same_key_puts(tmp_path, run_result):
    cache = RunCache(tmp_path)
    workload = get_workload("gemm_dse")
    key = run_cache_key(workload.source, workload.func_name, seed=7)

    hammer(lambda: cache.put(key, run_result))

    assert cache.quarantined == 0
    assert not list(tmp_path.glob("*.corrupt"))
    assert not list(tmp_path.glob("*.tmp*"))
    # A fresh cache (cold memory, must read the disk entry) sees a
    # complete, valid payload.
    fresh = RunCache(tmp_path)
    cached = fresh.get(key)
    assert cached is not None
    assert cached.to_dict() == run_result.to_dict()
    assert fresh.quarantined == 0


def test_runcache_concurrent_distinct_key_puts(tmp_path, run_result):
    cache = RunCache(tmp_path)
    keys = [f"{i:064d}" for i in range(THREADS)]
    counter = iter(range(THREADS))
    lock = threading.Lock()

    def put_one():
        with lock:
            key = keys[next(counter)]
        cache.put(key, run_result)

    hammer(put_one)
    fresh = RunCache(tmp_path)
    assert all(fresh.get(key) is not None for key in keys)
    assert fresh.quarantined == 0


def test_artifact_store_concurrent_same_key_puts(tmp_path):
    artifact = build_module(get_workload("gemm_dse").source, "gemm_dse")
    store = ArtifactStore(tmp_path)

    hammer(lambda: store.put(artifact.key, artifact))

    assert store.quarantined == 0
    assert not list(tmp_path.glob("*.corrupt"))
    assert not list(tmp_path.glob("*.tmp*"))
    fresh = ArtifactStore(tmp_path)
    loaded = fresh.get(artifact.key)
    assert loaded is not None
    assert loaded.key == artifact.key
    assert fresh.quarantined == 0
    # The rehydrated module still elaborates (i.e. it is not a torn write).
    assert "gemm_dse" in loaded.module.functions


def test_concurrent_put_get_mix(tmp_path, run_result):
    """Readers racing writers see either a miss or a complete entry."""
    cache = RunCache(tmp_path)
    key = "ab" * 32
    seen = []

    def read_or_write():
        cache.put(key, run_result)
        got = RunCache(tmp_path).get(key)  # cold read straight from disk
        seen.append(got)

    hammer(read_or_write)
    assert all(entry is not None for entry in seen)
    assert all(entry.to_dict() == run_result.to_dict() for entry in seen)
