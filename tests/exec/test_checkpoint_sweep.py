"""Checkpointable sweeps and the exponential retry-backoff schedule.

The resume bar: a sweep that finished half its grid before dying must
re-execute only the other half on the next run, and the resumed rows
must be byte-identical to an uninterrupted sweep's.
"""

import json

from repro.core.config import DeviceConfig
from repro.dse import sweep
from repro.exec import ParallelSweep, RunCache, SweepCheckpoint
from repro.workloads import get_workload

HALF_GRID = {"unroll": [1]}
FULL_GRID = {"unroll": [1, 2]}


def _configure(params):
    return dict(
        config=DeviceConfig(read_ports=2, write_ports=2),
        memory="spm",
        spm_bytes=1 << 15,
        unroll_factor=params["unroll"],
    )


#: Provenance columns describe what ran *this invocation* (a resumed
#: point ran nothing, so its engine_used is "" by design); the resume
#: bar is byte-identity of the result columns.
PROVENANCE = ("engine_used", "fallback_reason", "retimed")


def _rows(points):
    return [json.dumps({k: v for k, v in p.record().items()
                        if k not in PROVENANCE}, sort_keys=True)
            for p in points]


# ----------------------------------------------------------------------
# Backoff schedule (satellite: linear -> exponential with cap)
# ----------------------------------------------------------------------
def test_retry_backoff_schedule_is_exponential_and_capped():
    executor = ParallelSweep(retry_backoff_s=0.1, retry_backoff_cap_s=1.0)
    assert [executor.retry_delay(n) for n in (1, 2, 3, 4, 5, 6)] \
        == [0.1, 0.2, 0.4, 0.8, 1.0, 1.0]
    # Deterministic: the same attempt always waits the same time.
    assert executor.retry_delay(3) == executor.retry_delay(3)


def test_backoff_defaults_start_where_the_linear_schedule_did():
    executor = ParallelSweep()
    assert executor.retry_delay(1) == 0.1
    assert executor.retry_delay(100) == executor.retry_backoff_cap_s


# ----------------------------------------------------------------------
# Checkpoint resume
# ----------------------------------------------------------------------
def test_half_done_sweep_resumes_from_checkpoint(tmp_path):
    workload = get_workload("gemm_dse")
    path = tmp_path / "sweep.ckpt.jsonl"
    # "Crash" after half the grid: only the unroll=1 point completed.
    first = ParallelSweep(checkpoint=path)
    half = first.run(workload, HALF_GRID, _configure, seed=7)
    assert first.checkpoint_resumed == 0
    assert path.exists()

    # Restart over the full grid, same checkpoint, NO cache: the
    # finished point is resumed from disk, only unroll=2 executes.
    second = ParallelSweep(checkpoint=path)
    full = second.run(workload, FULL_GRID, _configure, seed=7)
    assert second.checkpoint_resumed == 1
    assert len(full) == 2

    # Byte-identical to a sweep that was never interrupted.
    uninterrupted = ParallelSweep().run(workload, FULL_GRID, _configure,
                                        seed=7)
    assert _rows(full) == _rows(uninterrupted)
    assert _rows(full[:1]) == _rows(half)


def test_rerun_resumes_every_point(tmp_path):
    workload = get_workload("gemm_dse")
    path = tmp_path / "ckpt.jsonl"
    ParallelSweep(checkpoint=path).run(workload, FULL_GRID, _configure,
                                       seed=7)
    again = ParallelSweep(checkpoint=path)
    again.run(workload, FULL_GRID, _configure, seed=7)
    assert again.checkpoint_resumed == 2
    # Idempotent: resuming did not append duplicate rows.
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2


def test_checkpoint_is_config_and_seed_sensitive(tmp_path):
    workload = get_workload("gemm_dse")
    path = tmp_path / "ckpt.jsonl"
    ParallelSweep(checkpoint=path).run(workload, HALF_GRID, _configure,
                                       seed=7)
    # Same params, different seed: a different run-cache key — the
    # checkpointed row must NOT be reused.
    other = ParallelSweep(checkpoint=path)
    other.run(workload, HALF_GRID, _configure, seed=8)
    assert other.checkpoint_resumed == 0


def test_corrupt_tail_is_quarantined_good_rows_survive(tmp_path):
    workload = get_workload("gemm_dse")
    path = tmp_path / "ckpt.jsonl"
    ParallelSweep(checkpoint=path).run(workload, FULL_GRID, _configure,
                                       seed=7)
    with open(path, "ab") as fh:
        fh.write(b'{"key": "cut-mid-ap')  # SIGKILL mid-append

    resumed = ParallelSweep(checkpoint=path)
    resumed.run(workload, FULL_GRID, _configure, seed=7)
    assert resumed.checkpoint_resumed == 2  # good rows still resume
    assert (tmp_path / "ckpt.jsonl.corrupt").exists()
    # The file was rewritten to its parsable prefix.
    for line in path.read_text().strip().splitlines():
        json.loads(line)


def test_cache_hits_are_recorded_into_the_checkpoint(tmp_path):
    workload = get_workload("gemm_dse")
    cache = RunCache()
    path = tmp_path / "ckpt.jsonl"
    ParallelSweep(cache=cache).run(workload, FULL_GRID, _configure, seed=7)
    # Second run with the cache AND a fresh checkpoint: every point is
    # a cache hit, and each lands in the checkpoint file too.
    ParallelSweep(cache=cache, checkpoint=path).run(
        workload, FULL_GRID, _configure, seed=7)
    assert cache.hits == 2
    # Third run with ONLY the checkpoint (cache gone): still no sims.
    third = ParallelSweep(checkpoint=path)
    third.run(workload, FULL_GRID, _configure, seed=7)
    assert third.checkpoint_resumed == 2


def test_checkpoint_feeds_the_cache_on_resume(tmp_path):
    workload = get_workload("gemm_dse")
    path = tmp_path / "ckpt.jsonl"
    ParallelSweep(checkpoint=path).run(workload, HALF_GRID, _configure,
                                       seed=7)
    cache = RunCache()
    resumed = ParallelSweep(checkpoint=path, cache=cache)
    resumed.run(workload, HALF_GRID, _configure, seed=7)
    assert resumed.checkpoint_resumed == 1
    assert len(cache) == 1  # the resumed result was promoted to the cache


def test_sweep_shim_forwards_checkpoint(tmp_path):
    workload = get_workload("gemm_dse")
    path = tmp_path / "ckpt.jsonl"
    via_shim = sweep(workload, HALF_GRID, _configure, seed=7,
                     checkpoint=SweepCheckpoint(path))
    assert path.exists()
    again = SweepCheckpoint(path)
    sweep(workload, HALF_GRID, _configure, seed=7, checkpoint=again)
    assert again.resumed == 1
    assert _rows(via_shim) == _rows(
        ParallelSweep().run(workload, HALF_GRID, _configure, seed=7))


def test_on_point_fires_for_resumed_points(tmp_path):
    workload = get_workload("gemm_dse")
    path = tmp_path / "ckpt.jsonl"
    ParallelSweep(checkpoint=path).run(workload, FULL_GRID, _configure,
                                       seed=7)
    seen = []
    ParallelSweep(checkpoint=path).run(
        workload, FULL_GRID, _configure, seed=7,
        on_point=lambda done, total, p: seen.append((done, total, p.ok)))
    assert seen == [(1, 2, True), (2, 2, True)]
