"""Unified execution layer: simulation lifecycle, caching, parallel sweeps.

The one place that knows how to take a kernel + configuration to a
`RunResult`: `SimContext` (build → stage → run → collect), `Simulation`
(event-loop execution over a built `System`), `RunCache`
(content-addressed results), and `ParallelSweep` (process-parallel DSE
grids).  `repro.dse`, `repro.system`, the CLI, and the benchmarks all
launch simulations through this layer.
"""

from repro.exec.cache import RunCache, run_cache_key, split_cache_key
from repro.exec.checkpoint import SweepCheckpoint
from repro.exec.context import SimContext, Simulation
from repro.exec.failures import FailureRecord, SweepPointError
from repro.exec.parallel import ParallelSweep, SweepPoint, grid_points
from repro.exec.params import (
    DATAPATH_PARAMS,
    EXECUTION_PARAMS,
    MEMORY_PARAMS,
    classify_param,
    split_acc_kwargs,
)
from repro.system.soc import RunResult

__all__ = [
    "RunCache",
    "run_cache_key",
    "split_cache_key",
    "DATAPATH_PARAMS",
    "MEMORY_PARAMS",
    "EXECUTION_PARAMS",
    "classify_param",
    "split_acc_kwargs",
    "SimContext",
    "Simulation",
    "SweepCheckpoint",
    "FailureRecord",
    "SweepPointError",
    "ParallelSweep",
    "SweepPoint",
    "grid_points",
    "RunResult",
]
