"""Set-associative cache (timing overlay).

The cache tracks tags, LRU state, dirty bits, and MSHRs but stores no
data: functional data always lives in the downstream backing store
(DRAM).  Reads are satisfied functionally from downstream at response
time; writes are forwarded functionally right away while timing follows
the writeback protocol (dirty line, delayed eviction traffic).  This is
the standard trick for decoupling functional correctness from timing
configuration, and it is what lets cache-size sweeps leave results
bit-identical (the decoupling claim of Sec. III-D).

Misses to the same line merge into one MSHR; the line fill occupies the
downstream port once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.clock import ClockDomain
from repro.sim.packet import MemCmd, Packet, read_packet, write_packet
from repro.sim.ports import MasterPort, SlavePort
from repro.sim.simobject import SimObject, System


@dataclass
class _Line:
    tag: int
    valid: bool = False
    dirty: bool = False
    lru: int = 0


@dataclass
class _MSHR:
    line_addr: int
    waiting: list[Packet] = field(default_factory=list)


class Cache(SimObject):
    def __init__(
        self,
        name: str,
        system: System,
        size: int = 4096,
        line_size: int = 64,
        assoc: int = 4,
        hit_latency_cycles: int = 2,
        mshrs: int = 8,
        clock: Optional[ClockDomain] = None,
    ) -> None:
        super().__init__(name, system, clock)
        if size % (line_size * assoc) != 0:
            raise ValueError(
                f"cache size {size} not divisible by line_size*assoc "
                f"({line_size}*{assoc})"
            )
        self.size = size
        self.line_size = line_size
        self.assoc = assoc
        self.hit_latency_cycles = hit_latency_cycles
        self.num_sets = size // (line_size * assoc)
        self.max_mshrs = mshrs
        self._sets: list[list[_Line]] = [
            [_Line(tag=-1) for __ in range(assoc)] for __ in range(self.num_sets)
        ]
        self._mshrs: dict[int, _MSHR] = {}
        self._lru_clock = 0

        self.cpu_side = SlavePort(
            f"{name}.cpu_side",
            recv_timing_req=self._recv_timing_req,
            recv_functional=self._recv_functional,
            owner=self,
        )
        self.mem_side = MasterPort(
            f"{name}.mem_side",
            recv_timing_resp=self._recv_fill_resp,
            owner=self,
        )
        self.stat_hits = self.stats.scalar("hits")
        self.stat_misses = self.stats.scalar("misses")
        self.stat_writebacks = self.stats.scalar("writebacks")
        self.stat_mshr_merges = self.stats.scalar("mshr_merges")
        self.stats.formula(
            "miss_rate",
            lambda: self.stat_misses.value()
            / max(1.0, self.stat_hits.value() + self.stat_misses.value()),
        )

    # ------------------------------------------------------------------
    def _line_addr(self, addr: int) -> int:
        return addr - (addr % self.line_size)

    def _lookup(self, addr: int) -> tuple[int, Optional[_Line]]:
        line_addr = self._line_addr(addr)
        set_index = (line_addr // self.line_size) % self.num_sets
        tag = line_addr // (self.line_size * self.num_sets)
        for line in self._sets[set_index]:
            if line.valid and line.tag == tag:
                return set_index, line
        return set_index, None

    def _touch(self, line: _Line) -> None:
        self._lru_clock += 1
        line.lru = self._lru_clock

    # -- functional -------------------------------------------------------
    def _recv_functional(self, pkt: Packet) -> Packet:
        return self.mem_side.send_functional(pkt)

    # -- request path --------------------------------------------------------
    def _recv_timing_req(self, pkt: Packet) -> bool:
        pkt.req_tick = self.cur_tick
        if self._finj is not None:
            self._finj.on_access(self)
        if self._san is not None and pkt.agent is not None:
            # Record once at the cache boundary; fill/writeback traffic
            # below carries no agent and is skipped at the DRAM hook.
            self._san.record(pkt.agent, pkt.addr, pkt.size, pkt.is_write,
                             self.cur_tick)
        if pkt.size > self.line_size:
            raise ValueError(
                f"{self.name}: access of {pkt.size}B exceeds line size; split upstream"
            )
        set_index, line = self._lookup(pkt.addr)
        if line is not None:
            self.stat_hits.inc()
            if self._thub is not None:
                self.trace_emit("mem", "hit", args={"addr": pkt.addr, "size": pkt.size})
            pkt.hit_level = self.name
            self._touch(line)
            if pkt.is_write:
                line.dirty = True
                # Functional write-through to the backing store.
                self.mem_side.send_functional(
                    write_packet(pkt.addr, pkt.data, origin=pkt.origin)
                )
            self.eventq.schedule_callback(
                lambda p=pkt: self._respond(p),
                self.clock_edge(self.hit_latency_cycles),
                name=f"{self.name}.hit",
            )
            return True

        # Miss.
        line_addr = self._line_addr(pkt.addr)
        if pkt.is_write:
            self.mem_side.send_functional(
                write_packet(pkt.addr, pkt.data, origin=pkt.origin)
            )
        if line_addr in self._mshrs:
            self.stat_mshr_merges.inc()
            self._mshrs[line_addr].waiting.append(pkt)
            return True
        self.stat_misses.inc()
        if self._thub is not None:
            self.trace_emit("mem", "miss", args={"addr": pkt.addr, "size": pkt.size})
        if len(self._mshrs) >= self.max_mshrs:
            return False  # backpressure: requester must retry
        mshr = _MSHR(line_addr)
        mshr.waiting.append(pkt)
        self._mshrs[line_addr] = mshr
        fill = read_packet(line_addr, self.line_size, origin=("fill", self.name))
        self.eventq.schedule_callback(
            lambda f=fill: self._issue_fill(f),
            self.clock_edge(self.hit_latency_cycles),
            name=f"{self.name}.fill",
        )
        return True

    def _issue_fill(self, fill: Packet) -> None:
        if not self.mem_side.send_timing_req(fill):
            # Downstream is busy; retry next cycle.
            self.eventq.schedule_callback(
                lambda f=fill: self._issue_fill(f),
                self.clock_edge(1),
                name=f"{self.name}.fill_retry",
            )

    # -- response path -----------------------------------------------------------
    def _recv_fill_resp(self, pkt: Packet) -> None:
        line_addr = pkt.addr
        mshr = self._mshrs.pop(line_addr, None)
        if mshr is None:
            return  # e.g. writeback ack
        line = self._install(line_addr)
        if any(waiting.is_write for waiting in mshr.waiting):
            line.dirty = True
        for waiting in mshr.waiting:
            self._respond(waiting)

    def _install(self, line_addr: int) -> _Line:
        set_index = (line_addr // self.line_size) % self.num_sets
        tag = line_addr // (self.line_size * self.num_sets)
        victim = min(self._sets[set_index], key=lambda l: (l.valid, l.lru))
        if victim.valid and victim.dirty:
            self.stat_writebacks.inc()
            if self._thub is not None:
                self.trace_emit("mem", "writeback", args={"line": line_addr})
            victim_addr = (
                victim.tag * self.num_sets + set_index
            ) * self.line_size
            # Data already written through functionally; model the
            # writeback traffic only.
            wb_data = self.mem_side.send_functional(
                read_packet(victim_addr, self.line_size)
            ).data
            wb = write_packet(victim_addr, wb_data, origin=("writeback", self.name))
            self.mem_side.send_timing_req(wb)
        victim.tag = tag
        victim.valid = True
        victim.dirty = False
        self._touch(victim)
        return victim

    def _respond(self, pkt: Packet) -> None:
        pkt.hops.append(self.name)
        if pkt.cmd is MemCmd.READ:
            data = self.mem_side.send_functional(
                read_packet(pkt.addr, pkt.size)
            ).data
            resp = pkt.make_response(data=data)
        else:
            resp = pkt.make_response()
        resp.resp_tick = self.cur_tick
        self.cpu_side.send_timing_resp(resp)
