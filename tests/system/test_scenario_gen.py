"""Scenario generator + static/sanitizer cross-validation."""

import numpy as np

from repro.system import scenario_gen as sg


def _codes(report):
    return {d.code for d in report}


def test_generate_is_deterministic():
    assert sg.generate(3) == sg.generate(3)
    assert sg.generate(3, racy=True) == sg.generate(3, racy=True)
    specs = {sg.generate(seed).topology for seed in range(20)}
    assert specs == set(sg.TOPOLOGIES)  # all topologies reachable


def test_racy_spec_mutation_matches_topology():
    for seed in range(20):
        spec = sg.generate(seed, racy=True)
        assert spec.mutation in sg.MUTATIONS[spec.topology]
        assert sg.generate(seed).mutation is None


def test_parse_gen_spec():
    spec = sg.parse_gen_spec("gen:5")
    assert spec == sg.generate(5)
    assert sg.parse_gen_spec("gen:5:racy") == sg.generate(5, racy=True)
    for bad in ("gen:x", "gen:1:bogus", "foo:1", "gen:1:racy:extra"):
        try:
            sg.parse_gen_spec(bad)
        except ValueError:
            pass
        else:
            raise AssertionError(f"accepted {bad!r}")


def test_clean_scenario_runs_and_verifies():
    spec = sg.generate(0)
    scen = sg.build(spec)
    assert not _codes(scen.static_report()) & {"SYS304", "SYS305", "SYS306"}
    out = sg.build(spec).run()
    assert out["finished"] and out["verified"]
    golden = sg.build(spec).golden()
    assert np.allclose(out["output"], golden)


def test_racy_scenario_flagged_statically():
    for seed in range(10):
        spec = sg.generate(seed, racy=True)
        codes = _codes(sg.build(spec).static_report())
        assert "SYS304" in codes, spec.name
        if spec.mutation == "early_start":
            assert "SYS306" in codes, spec.name


def test_static_model_agrees_with_live_extraction():
    # After a clean run, the plan-derived model and the log-derived
    # model reach the same verdict (both clean).
    from repro.analysis.concurrency import describe_concurrency, lint_concurrency

    spec = sg.generate(1)
    scen = sg.build(spec)
    static = scen.static_model()
    assert not scen.run()["sanitizer"]  # unsanitized run
    live = describe_concurrency(scen.soc)
    assert live is not None
    for model in (static, live):
        assert not lint_concurrency(model).has_errors
    assert set(static.agents) == set(live.agents)


def test_run_is_single_shot():
    scen = sg.build(sg.generate(0))
    scen.run()
    try:
        scen.run()
    except RuntimeError:
        pass
    else:
        raise AssertionError("second run() accepted")


def test_cross_validate_acceptance():
    """The PR's acceptance gate: >= 50 generated topologies, zero
    static false negatives, sanitizer-invisible timing."""
    result = sg.cross_validate(num_seeds=26)
    assert result["scenarios"] >= 50
    assert result["violations"] == []
    # The racy variants are not vacuous: most actually race at runtime.
    assert result["races_observed"] >= result["seeds"] // 2
