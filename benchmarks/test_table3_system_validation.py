"""Table III — end-to-end system validation vs the FPGA platform model.

Five benchmarks run on the full-system simulator (host programs a
cluster: DMA inputs in, start accelerator, wait for the interrupt, DMA
outputs back) against the ZCU102-style platform model, decomposed into
compute time and bulk-transfer time exactly as the paper reports.

Expected shape (paper: avg compute err 1.94%, transfer err 2.35%,
total err 1.62%): single-digit-percent disagreement in every column,
with double-precision-heavy kernels (GEMM, FFT) showing the larger
compute gaps.
"""

import numpy as np

from conftest import SEED, save_and_print, stage_into
from repro.core.mmr import ARGS_OFFSET, CTRL_IRQ_EN, CTRL_START
from repro.dse import format_table
from repro.frontend import compile_c
from repro.hls import FPGAPlatformModel, hls_cycle_estimate
from repro.hw.default_profile import default_profile
from repro.hw.profile import FU_NONE
from repro.ir.memory import MemoryImage
from repro.system.soc import build_soc
from repro.workloads import get_workload

BENCHES = ["fft", "gemm", "stencil2d", "stencil3d", "md_knn"]
ACC_CLOCK_HZ = 100e6


def _simulate_system(name):
    """Full-system run; returns (compute_us, bulk_us, in_bytes, out_bytes)."""
    workload = get_workload(name)
    module = compile_c(workload.source, workload.func_name)
    # Embedded-class platform: moderate DRAM bandwidth and realistic
    # driver costs (2 us DMA setup / IRQ service on the 1.2 GHz host).
    soc = build_soc(
        dram_size=1 << 22,
        host_op_overhead_cycles={"dma_copy": 2400, "wait_irq": 2400, "write_mmr": 120},
    )
    soc.dram.bytes_per_cycle = 2
    cluster = soc.add_cluster("cl")
    from repro.core.config import DeviceConfig

    unit = cluster.add_accelerator(
        "acc", module, workload.func_name, default_profile(),
        config=DeviceConfig(clock_freq_hz=ACC_CLOCK_HZ),
        private_spm_bytes=1 << 16, spm_read_ports=2,
    )
    unit.comm.connect_irq(soc.irq.line(0))
    soc.finalize()

    data = workload.make_data(np.random.default_rng(SEED))
    spm_base = unit.private_spm.range.start
    cursor = [spm_base]
    staged = {}
    dram_addrs = {}
    for arg_name in workload.arg_order:
        if arg_name not in data.inputs:
            continue
        array = np.ascontiguousarray(data.inputs[arg_name])
        dram_addrs[arg_name] = soc.dram.image.alloc_array(array)
        staged[arg_name] = (cursor[0], array.nbytes)
        cursor[0] += (array.nbytes + 63) & ~63

    in_bytes = sum(size for __, size in staged.values())
    out_names = data.output_names
    out_bytes = sum(data.golden[n].nbytes for n in out_names)

    marks = {}
    host = soc.host
    mmr = unit.comm.mmr.range.start

    def driver(h):
        marks["t0"] = soc.system.cur_tick
        for arg_name, (spm_addr, size) in staged.items():
            yield h.dma_copy(cluster.dma, dram_addrs[arg_name], spm_addr, size)
        marks["in_done"] = soc.system.cur_tick
        for index, arg_name in enumerate(workload.arg_order):
            if arg_name in staged:
                yield h.write_mmr(mmr + ARGS_OFFSET + 8 * index, staged[arg_name][0])
            else:
                yield h.write_mmr(mmr + ARGS_OFFSET + 8 * index,
                                  int(data.scalars[arg_name]))
        yield h.write_mmr(mmr, CTRL_START | CTRL_IRQ_EN)
        marks["compute_start"] = soc.system.cur_tick
        yield h.wait_irq(0)
        marks["compute_done"] = soc.system.cur_tick
        for out_name in out_names:
            spm_addr, size = staged[out_name]
            yield h.dma_copy(cluster.dma, spm_addr, dram_addrs[out_name], size)
        marks["out_done"] = soc.system.cur_tick

    host.run_driver(driver(host))
    cause = soc.run(max_ticks=50_000_000_000)
    assert host.finished, f"{name}: driver stuck ({cause})"
    for out_name in out_names:
        expected = data.golden[out_name]
        actual = soc.dram.image.read_array(
            dram_addrs[out_name], expected.dtype, expected.size
        )
        assert np.allclose(actual, expected.ravel(), rtol=1e-6, atol=1e-9), out_name

    compute_us = unit.engine.total_cycles * (1e9 / ACC_CLOCK_HZ) / 1e3
    bulk_us = (
        (marks["in_done"] - marks["t0"]) + (marks["out_done"] - marks["compute_done"])
    ) / 1e6
    return compute_us, bulk_us, in_bytes, out_bytes, module, workload


def _fpga_reference(module, workload, in_bytes, out_bytes, transfers):
    mem = MemoryImage(1 << 17, base=0x2000_0000)
    args, __ = stage_into(workload, mem)
    profile = default_profile()
    schedule = hls_cycle_estimate(module, workload.func_name, args, mem, profile)
    func = module.get_function(workload.func_name)
    from repro.hw.profile import fu_class_for

    compute_ops = [
        fu_class_for(i) for i in func.instructions() if fu_class_for(i) != FU_NONE
    ]
    fp_fraction = (
        sum(1 for c in compute_ops if c.startswith("fp_")) / max(1, len(compute_ops))
    )
    fpga = FPGAPlatformModel(pl_clock_hz=ACC_CLOCK_HZ)
    return fpga.run(schedule.total_cycles, in_bytes, out_bytes,
                    fp_fraction=fp_fraction, transfers=transfers)


def test_table3(benchmark):
    def run():
        rows = []
        for name in BENCHES:
            compute_us, bulk_us, in_bytes, out_bytes, module, workload = _simulate_system(name)
            data = workload.make_data(np.random.default_rng(SEED))
            transfers = sum(1 for a in workload.arg_order if a in data.inputs) + len(
                data.output_names
            )
            fpga = _fpga_reference(module, workload, in_bytes, out_bytes, transfers)
            rows.append(
                {
                    "benchmark": name,
                    "fpga_compute_us": fpga.compute_us,
                    "sim_compute_us": compute_us,
                    "fpga_bulk_us": fpga.bulk_transfer_us,
                    "sim_bulk_us": bulk_us,
                    "compute_err_pct": 100 * (fpga.compute_us - compute_us) / fpga.compute_us,
                    "bulk_err_pct": 100 * (fpga.bulk_transfer_us - bulk_us) / fpga.bulk_transfer_us,
                    "total_err_pct": 100
                    * ((fpga.total_us) - (compute_us + bulk_us))
                    / fpga.total_us,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    avg_compute = float(np.mean([abs(r["compute_err_pct"]) for r in rows]))
    avg_bulk = float(np.mean([abs(r["bulk_err_pct"]) for r in rows]))
    avg_total = float(np.mean([abs(r["total_err_pct"]) for r in rows]))
    rows.append(
        {
            "benchmark": "AVERAGE |err|",
            "compute_err_pct": avg_compute,
            "bulk_err_pct": avg_bulk,
            "total_err_pct": avg_total,
        }
    )
    save_and_print(
        "table3_system_validation",
        format_table(rows, title="Table III: end-to-end validation (FPGA model vs simulation)",
                     float_fmt="{:.3f}"),
    )
    assert avg_compute < 12.0
    assert avg_bulk < 20.0
    assert avg_total < 10.0
