"""IR lint rules: each seeded defect must be flagged, clean code not."""

from repro.analysis import lint_function, lint_module
from repro.analysis.diagnostics import Severity
from repro.frontend import compile_c
from repro.ir.builder import IRBuilder
from repro.ir.module import Function, Module
from repro.ir.types import I1, I32, VOID, ArrayType, PointerType
from repro.ir.values import Constant
from repro.workloads import all_workload_names, get_workload


def _codes(report, severity=None):
    return {d.code for d in report
            if severity is None or d.severity is severity}


# ----------------------------------------------------------------------
# IR101: dead store
# ----------------------------------------------------------------------
def test_dead_store_flagged():
    f = Function("f", I32, [])
    b = IRBuilder(f.add_block("entry"))
    buf = b.alloca(ArrayType(I32, 4), name="buf")
    p0 = b.gep(buf, [0, 0], name="p0")
    b.store(b.const(I32, 7), p0)      # dead: overwritten before any load
    b.store(b.const(I32, 9), p0)
    v = b.load(p0, name="v")
    b.ret(v)
    report = lint_function(f)
    dead = [d for d in report if d.code == "IR101"]
    assert len(dead) == 1
    assert dead[0].severity is Severity.WARNING
    assert "+0" in dead[0].message


def test_live_store_not_flagged():
    f = Function("f", I32, [])
    b = IRBuilder(f.add_block("entry"))
    buf = b.alloca(ArrayType(I32, 4), name="buf")
    p0 = b.gep(buf, [0, 0], name="p0")
    b.store(b.const(I32, 7), p0)
    v = b.load(p0, name="v")
    b.ret(v)
    assert "IR101" not in _codes(lint_function(f))


def test_store_through_argument_never_dead():
    f = Function("f", VOID, [(PointerType(I32), "out")])
    b = IRBuilder(f.add_block("entry"))
    b.store(b.const(I32, 1), f.args[0])  # caller-observable
    b.ret()
    assert "IR101" not in _codes(lint_function(f))


# ----------------------------------------------------------------------
# IR102: unreachable block
# ----------------------------------------------------------------------
def test_unreachable_block_flagged():
    f = Function("f", VOID, [])
    entry, dead = f.add_block("entry"), f.add_block("island")
    b = IRBuilder(entry)
    b.ret()
    b.position_at_end(dead)
    b.ret()
    report = lint_function(f)
    hits = [d for d in report if d.code == "IR102"]
    assert len(hits) == 1
    assert "island" in hits[0].message


# ----------------------------------------------------------------------
# IR103: load before store on an alloca
# ----------------------------------------------------------------------
def test_uninitialized_load_is_error():
    f = Function("f", I32, [])
    b = IRBuilder(f.add_block("entry"))
    buf = b.alloca(ArrayType(I32, 4), name="buf")
    p = b.gep(buf, [0, 2], name="p")
    v = b.load(p, name="v")  # never stored
    b.ret(v)
    report = lint_function(f)
    errors = [d for d in report if d.code == "IR103"]
    assert errors and errors[0].severity is Severity.ERROR


def test_partially_initialized_load_is_note():
    f = Function("f", I32, [(I1, "c")])
    entry, then, merge = (f.add_block("entry"), f.add_block("then"),
                          f.add_block("merge"))
    b = IRBuilder(entry)
    slot = b.alloca(I32, name="slot")
    b.cbr(f.args[0], then, merge)
    b.position_at_end(then)
    b.store(b.const(I32, 1), slot)
    b.br(merge)
    b.position_at_end(merge)
    v = b.load(slot, name="v")  # initialized only on the `then` path
    b.ret(v)
    report = lint_function(f)
    hits = [d for d in report if d.code == "IR103"]
    assert hits and hits[0].severity is Severity.NOTE


def test_fully_initialized_load_is_clean():
    f = Function("f", I32, [])
    b = IRBuilder(f.add_block("entry"))
    slot = b.alloca(I32, name="slot")
    b.store(b.const(I32, 1), slot)
    v = b.load(slot, name="v")
    b.ret(v)
    assert "IR103" not in _codes(lint_function(f))


# ----------------------------------------------------------------------
# IR104: constant-condition branch
# ----------------------------------------------------------------------
def test_constant_branch_flagged():
    f = Function("f", VOID, [])
    entry, a, z = f.add_block("entry"), f.add_block("a"), f.add_block("z")
    b = IRBuilder(entry)
    b.cbr(Constant(I1, 1), a, z)
    b.position_at_end(a)
    b.ret()
    b.position_at_end(z)
    b.ret()
    report = lint_function(f)
    hits = [d for d in report if d.code == "IR104"]
    assert len(hits) == 1
    assert "'z'" in hits[0].message  # the dead edge is named


# ----------------------------------------------------------------------
# IR105: loop with no exit
# ----------------------------------------------------------------------
def test_no_exit_loop_is_error():
    f = Function("f", VOID, [])
    entry, loop = f.add_block("entry"), f.add_block("loop")
    b = IRBuilder(entry)
    b.br(loop)
    b.position_at_end(loop)
    b.br(loop)  # spins forever
    report = lint_function(f)
    hits = [d for d in report if d.code == "IR105"]
    assert hits and hits[0].severity is Severity.ERROR


def test_normal_loop_has_exit():
    module = compile_c(
        "void k(int a[8]) { for (int i = 0; i < 8; i++) { a[i] = i; } }",
        "k",
    )
    assert "IR105" not in _codes(lint_module(module))


# ----------------------------------------------------------------------
# IR106: statically out-of-bounds GEP
# ----------------------------------------------------------------------
def test_oob_array_index_flagged():
    f = Function("f", I32, [])
    b = IRBuilder(f.add_block("entry"))
    buf = b.alloca(ArrayType(I32, 4), name="buf")
    b.store(b.const(I32, 0), b.gep(buf, [0, 0], name="p0"))
    p = b.gep(buf, [0, 6], name="p")  # index 6 into [4 x i32]
    v = b.load(p, name="v")
    b.ret(v)
    report = lint_function(f)
    hits = [d for d in report if d.code == "IR106"]
    assert hits and hits[0].severity is Severity.ERROR
    assert "6" in hits[0].message


def test_in_bounds_gep_clean():
    f = Function("f", I32, [])
    b = IRBuilder(f.add_block("entry"))
    buf = b.alloca(ArrayType(I32, 4), name="buf")
    p = b.gep(buf, [0, 3], name="p")
    b.store(b.const(I32, 1), p)
    v = b.load(p, name="v")
    b.ret(v)
    assert "IR106" not in _codes(lint_function(f))


# ----------------------------------------------------------------------
# Driver-level behaviour
# ----------------------------------------------------------------------
def test_lint_module_covers_all_functions():
    m = Module("m")
    for name in ("f", "g"):
        f = Function(name, VOID, [])
        m.add_function(f)
        entry, dead = f.add_block("entry"), f.add_block("dead")
        b = IRBuilder(entry)
        b.ret()
        b.position_at_end(dead)
        b.ret()
    report = lint_module(m)
    assert len([d for d in report if d.code == "IR102"]) == 2
    functions = {d.location.function for d in report}
    assert functions == {"f", "g"}


def test_per_rule_timings_recorded():
    module = compile_c(
        "void k(int a[8]) { for (int i = 0; i < 8; i++) { a[i] = i; } }",
        "k",
    )
    report = lint_module(module)
    assert "dead-store" in report.timings
    assert "gep-bounds" in report.timings
    assert all(t >= 0 for t in report.timings.values())


def test_all_shipped_workloads_error_free():
    """Acceptance gate: zero error-severity findings on shipped kernels."""
    for name in all_workload_names():
        workload = get_workload(name)
        report = lint_module(workload.module())
        assert not report.has_errors, (
            f"{name}: {[d.render() for d in report.errors]}"
        )
