"""Build artifacts: the hashable, picklable products of each stage.

The staged pipeline (`repro.build.pipeline`) consumes and produces
`Artifact`s — a typed wrapper around one stage's output plus the
provenance needed to reuse it: the content-addressed key, the pipeline
spec that produced it, and per-stage timings.  IR artifacts carry a
`module_fingerprint` so "did two compiles produce the same datapath"
is a string comparison, not a graph walk.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.config import DeviceConfig
from repro.core.llvm_interface import LLVMInterface
from repro.hw.profile import HardwareProfile
from repro.ir.module import Module

#: Stage products, in pipeline order.  (``trace`` is a `ScheduleTrace`
#: captured from a graph run — see `repro.engine.retime`.)
ARTIFACT_KINDS = ("ast", "ir", "opt-ir", "design", "graph", "trace")


def module_fingerprint(module: Module) -> str:
    """Content hash of a module's printed IR.

    The printer (and, since the mem2reg determinism fix, the whole
    standard pipeline) is deterministic, so equal source + equal pass
    pipeline ⇒ equal fingerprint — across runs and across processes.
    """
    from repro.ir.printer import print_module

    return hashlib.sha256(print_module(module).encode("utf-8")).hexdigest()


def artifact_key(source: str, name: str, pipeline) -> str:
    """Content-addressed key of one compile: (source, function, passes).

    ``pipeline`` is anything `PipelineSpec.parse` accepts; the key hashes
    its *canonical* string, so ``"o1:4"`` and the expanded pass list it
    stands for share a cache entry.
    """
    from repro.passes.pipeline import PipelineSpec

    payload = {
        "source": source,
        "name": name,
        "pipeline": PipelineSpec.parse(pipeline).canonical(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class Artifact:
    """One stage's output plus provenance.

    ``kind`` names the stage product (`ARTIFACT_KINDS`); ``key`` is the
    content-addressed build key (empty for intermediate artifacts that
    never hit the store); ``meta`` records provenance — pipeline spec,
    module fingerprint, per-stage seconds, whether it was a store hit.
    """

    kind: str
    payload: object
    key: str = ""
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ARTIFACT_KINDS:
            raise ValueError(
                f"unknown artifact kind '{self.kind}'; valid: "
                f"{', '.join(ARTIFACT_KINDS)}"
            )

    @property
    def module(self) -> Module:
        """The IR module (``ir``/``opt-ir`` artifacts, or a design's)."""
        if isinstance(self.payload, Module):
            return self.payload
        if isinstance(self.payload, ElaboratedDesign):
            return self.payload.module
        raise TypeError(f"'{self.kind}' artifact holds no module")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        short = f" {self.key[:12]}" if self.key else ""
        return f"<Artifact {self.kind}{short}>"


class ElaboratedDesign:
    """The elaborate-stage product: a statically elaborated datapath.

    Wraps `LLVMInterface` (CDFG, FU mapping, static power/area) with the
    inputs that produced it, so consumers can rebuild runtime state
    without re-running any earlier stage.
    """

    def __init__(self, iface: LLVMInterface) -> None:
        self.iface = iface

    @classmethod
    def elaborate(
        cls,
        module: Module,
        func_name: str,
        profile: Optional[HardwareProfile] = None,
        config: Optional[DeviceConfig] = None,
    ) -> "ElaboratedDesign":
        from repro.hw.default_profile import default_profile

        config = config or DeviceConfig()
        profile = profile or default_profile(config.cycle_time_ns)
        return cls(LLVMInterface(module, func_name, profile, config))

    # -- convenience views -------------------------------------------------
    @property
    def module(self) -> Module:
        return self.iface.module

    @property
    def func_name(self) -> str:
        return self.iface.func.name

    @property
    def cdfg(self):
        return self.iface.cdfg

    @property
    def static(self):
        return self.iface.static

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ElaboratedDesign {self.func_name} "
                f"({self.cdfg.total_instructions()} insts)>")


#: Anything the build entry points accept as "the kernel".
SourceLike = Union[str, Module, Artifact]
