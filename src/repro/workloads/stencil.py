"""Stencil kernels (MachSuite stencil/stencil2d and stencil/stencil3d).

Stencil2D: 3x3 filter over a 16x16 double grid.
Stencil3D: 7-point stencil over an 8x8x8 int32 grid with boundary copy.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload, WorkloadData

ROWS = 16
COLS = 16

SOURCE_2D = f"""
void stencil2d(double orig[{ROWS * COLS}], double sol[{ROWS * COLS}],
               double filter[9]) {{
  for (int r = 0; r < {ROWS - 2}; r++) {{
    for (int c = 0; c < {COLS - 2}; c++) {{
      double temp = 0;
      for (int k1 = 0; k1 < 3; k1++) {{
        for (int k2 = 0; k2 < 3; k2++) {{
          double mul = filter[k1 * 3 + k2] * orig[(r + k1) * {COLS} + c + k2];
          temp += mul;
        }}
      }}
      sol[r * {COLS} + c] = temp;
    }}
  }}
}}
"""


def make_data_2d(rng: np.random.Generator) -> WorkloadData:
    orig = rng.uniform(-1.0, 1.0, (ROWS, COLS))
    filt = rng.uniform(-1.0, 1.0, 9)
    sol = np.zeros((ROWS, COLS))
    golden = np.zeros((ROWS, COLS))
    for r in range(ROWS - 2):
        for c in range(COLS - 2):
            temp = 0.0
            for k1 in range(3):
                for k2 in range(3):
                    temp += filt[k1 * 3 + k2] * orig[r + k1, c + k2]
            golden[r, c] = temp
    return WorkloadData(
        inputs={"orig": orig, "sol": sol, "filter": filt},
        output_names=["sol"],
        golden={"sol": golden},
    )


STENCIL2D = Workload(
    name="stencil2d",
    source=SOURCE_2D,
    func_name="stencil2d",
    arg_order=["orig", "sol", "filter"],
    make_data=make_data_2d,
    description=f"3x3 filter over a {ROWS}x{COLS} double grid",
)


# ---------------------------------------------------------------------------
H, C3, R3 = 8, 8, 8  # height (slowest) x col x row

SOURCE_3D = f"""
void stencil3d(int C0, int C1, int orig[{H * C3 * R3}], int sol[{H * C3 * R3}]) {{
  // Boundary copy: faces keep their original values.
  for (int j = 0; j < {C3}; j++) {{
    for (int k = 0; k < {R3}; k++) {{
      sol[j * {R3} + k] = orig[j * {R3} + k];
      sol[({H - 1}) * {C3 * R3} + j * {R3} + k] =
          orig[({H - 1}) * {C3 * R3} + j * {R3} + k];
    }}
  }}
  for (int i = 1; i < {H - 1}; i++) {{
    for (int k = 0; k < {R3}; k++) {{
      sol[i * {C3 * R3} + k] = orig[i * {C3 * R3} + k];
      sol[i * {C3 * R3} + ({C3 - 1}) * {R3} + k] =
          orig[i * {C3 * R3} + ({C3 - 1}) * {R3} + k];
    }}
    for (int j = 1; j < {C3 - 1}; j++) {{
      sol[i * {C3 * R3} + j * {R3}] = orig[i * {C3 * R3} + j * {R3}];
      sol[i * {C3 * R3} + j * {R3} + {R3 - 1}] =
          orig[i * {C3 * R3} + j * {R3} + {R3 - 1}];
    }}
  }}
  // Interior 7-point stencil.
  for (int i = 1; i < {H - 1}; i++) {{
    for (int j = 1; j < {C3 - 1}; j++) {{
      for (int k = 1; k < {R3 - 1}; k++) {{
        int sum0 = orig[i * {C3 * R3} + j * {R3} + k];
        int sum1 = orig[i * {C3 * R3} + j * {R3} + k + 1]
                 + orig[i * {C3 * R3} + j * {R3} + k - 1]
                 + orig[i * {C3 * R3} + (j + 1) * {R3} + k]
                 + orig[i * {C3 * R3} + (j - 1) * {R3} + k]
                 + orig[(i + 1) * {C3 * R3} + j * {R3} + k]
                 + orig[(i - 1) * {C3 * R3} + j * {R3} + k];
        int mul0 = sum0 * C0;
        int mul1 = sum1 * C1;
        sol[i * {C3 * R3} + j * {R3} + k] = mul0 + mul1;
      }}
    }}
  }}
}}
"""


def make_data_3d(rng: np.random.Generator) -> WorkloadData:
    orig = rng.integers(-100, 100, size=(H, C3, R3), dtype=np.int32)
    sol = np.zeros((H, C3, R3), dtype=np.int32)
    c0, c1 = 2, -1
    golden = orig.copy()
    interior = np.zeros_like(orig)
    for i in range(1, H - 1):
        for j in range(1, C3 - 1):
            for k in range(1, R3 - 1):
                sum0 = int(orig[i, j, k])
                sum1 = (
                    int(orig[i, j, k + 1]) + int(orig[i, j, k - 1])
                    + int(orig[i, j + 1, k]) + int(orig[i, j - 1, k])
                    + int(orig[i + 1, j, k]) + int(orig[i - 1, j, k])
                )
                interior[i, j, k] = np.int32(sum0 * c0 + sum1 * c1)
    golden[1:-1, 1:-1, 1:-1] = interior[1:-1, 1:-1, 1:-1]
    return WorkloadData(
        inputs={"orig": orig, "sol": sol},
        output_names=["sol"],
        golden={"sol": golden},
        scalars={"C0": c0, "C1": c1},
    )


STENCIL3D = Workload(
    name="stencil3d",
    source=SOURCE_3D,
    func_name="stencil3d",
    arg_order=["C0", "C1", "orig", "sol"],
    make_data=make_data_3d,
    description=f"7-point stencil over an {H}x{C3}x{R3} int32 grid",
)
