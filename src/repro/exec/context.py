"""The simulation lifecycle as an explicit, reusable object.

Every consumer of the simulator used to hand-roll the same four phases:
build the `System` (compile the kernel, elaborate the datapath, wire the
memory system), stage the workload's dataset, drain the event loop, and
collect statistics.  This module names those phases:

* :class:`Simulation` wraps an already-built `System` — init-once
  event-loop runs, stats collection, and reset/teardown.
* :class:`SimContext` owns the full build → stage → run → collect
  pipeline for one kernel on one `StandaloneAccelerator`
  configuration, with optional result caching and golden-model
  verification.  Contexts are reusable (`reset()` then `run()` again)
  and picklable (live simulator state is dropped, the spec survives),
  which is what lets `ParallelSweep` ship them across processes.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.build.artifact import Artifact
from repro.build.store import ArtifactStore
from repro.exec.cache import RunCache, run_cache_key, split_cache_key
from repro.faults import FaultInjector, FaultPlan, SimWatchdog, coerce_watchdog
from repro.ir.module import Module
from repro.passes.pipeline import PipelineSpec
from repro.sim.simobject import System
from repro.sim.stats import format_stats
from repro.system.soc import RunResult, StandaloneAccelerator
from repro.trace import TraceConfig, TraceHub
from repro.workloads.base import Workload


class Simulation:
    """Owns a built `System`: event-loop execution, stats, reset.

    The thin waist between "a wired platform" and "a finished run" —
    used directly by the SoC-level scenarios, and indirectly (via
    `StandaloneAccelerator`) by :class:`SimContext`.
    """

    def __init__(self, system: System, trace=None) -> None:
        self.system = system
        self.exit_cause: Optional[str] = None
        self.trace = TraceConfig.coerce(trace)
        self.trace_hub: Optional[TraceHub] = None
        if self.trace is not None:
            self.trace_hub = self.trace.make_hub()
            system.attach_trace_hub(self.trace_hub)

    @property
    def cur_tick(self) -> int:
        return self.system.cur_tick

    def run(self, max_tick: Optional[int] = None,
            max_events: Optional[int] = None, watchdog=None) -> str:
        """Initialise (once) and drain the event queue; returns the exit cause."""
        self.exit_cause = self.system.run(
            max_tick=max_tick, max_events=max_events,
            watchdog=coerce_watchdog(watchdog, self.system),
        )
        return self.exit_cause

    def stats(self) -> dict:
        return self.system.dump_stats()

    def report(self) -> str:
        return format_stats(self.stats(), title=self.system.name)

    def reset(self) -> None:
        """Tear down run state so the same system can simulate again."""
        self.system.reset()
        self.exit_cause = None


class SimContext:
    """One kernel's build → stage → run → collect lifecycle.

    Workload mode (cacheable)::

        ctx = SimContext(get_workload("gemm"), config=DeviceConfig(...),
                         memory="spm", spm_bytes=1 << 15, seed=7)
        result = ctx.run()          # RunResult, verified against the golden model
        ctx.reset()                 # reusable: tears down, next run() rebuilds

    Source mode (arbitrary staging, not cacheable)::

        ctx = SimContext.from_source(KERNEL, "saxpy", args_builder, memory="spm")
    """

    def __init__(
        self,
        workload: Optional[Workload] = None,
        *,
        seed: int = 7,
        verify: bool = True,
        cache: Optional[RunCache] = None,
        max_ticks: Optional[int] = None,
        max_events: Optional[int] = None,
        source: Union[str, Module, None] = None,
        func_name: Optional[str] = None,
        args_builder: Optional[Callable[[StandaloneAccelerator], list]] = None,
        trace=None,
        faults=None,
        sanitize: bool = False,
        watchdog=None,
        timeout_s: Optional[float] = None,
        module: Union[Module, Artifact, None] = None,
        pipeline: Union[str, PipelineSpec, None] = None,
        artifact_store: Optional[ArtifactStore] = None,
        engine: str = "dynamic",
        **acc_kwargs,
    ) -> None:
        if (workload is None) == (source is None):
            raise ValueError("pass exactly one of 'workload' or 'source'")
        if source is not None and func_name is None:
            raise ValueError("source mode needs 'func_name'")
        if cache is not None and workload is None:
            raise ValueError(
                "caching needs workload mode: an args_builder callable "
                "cannot be part of a content-addressed key"
            )
        self.workload = workload
        self.source = workload.source if workload is not None else source
        self.func_name = workload.func_name if workload is not None else func_name
        self.args_builder = args_builder
        self.seed = seed
        self.verify = verify
        self.cache = cache
        self.max_ticks = max_ticks
        self.max_events = max_events
        # Tracing is observability only: deliberately NOT in cache_key().
        self.trace = TraceConfig.coerce(trace)
        # Robustness knobs: fault plans poison results, so faulty runs
        # bypass the cache entirely; watchdog/timeout are observability.
        self.faults = FaultPlan.coerce(faults)
        # Race detection: sanitized runs carry extra result payload and
        # force the dynamic engine, so they also bypass the run cache.
        self.sanitize = sanitize
        self.watchdog = watchdog
        self.timeout_s = timeout_s
        # Build-pipeline plumbing: a prebuilt module (compiled once by
        # e.g. the sweep parent and shipped across the pool) skips the
        # frontend entirely; an explicit pipeline spec changes which
        # passes run (and is part of the run-cache key); the artifact
        # store makes repeated compiles of the same kernel near-free.
        self.module_input = module
        self.pipeline = PipelineSpec.parse(pipeline) if pipeline is not None else None
        self.artifact_store = artifact_store
        # Engine selection is an execution strategy, not a design point:
        # the graph backend produces byte-identical results, so it is
        # deliberately NOT part of cache_key() — both engines share one
        # run-cache entry.
        self.engine = engine
        self.acc_kwargs = dict(acc_kwargs)
        # Live per-run state (rebuilt after reset; never pickled).
        self.fault_injector: Optional[FaultInjector] = None
        self.sanitizer = None
        self.trace_hub: Optional[TraceHub] = None
        self._module: Optional[Module] = None
        self._acc: Optional[StandaloneAccelerator] = None
        self._data = None
        self._addresses: Optional[dict[str, int]] = None
        self._args: Optional[list] = None
        self._ran = False
        self.last_result: Optional[RunResult] = None
        #: True when the last `run()` was served from the run cache
        #: (no simulation happened); consumers like `repro.serve` use
        #: this to report cache hits per request.
        self.cache_hit = False
        #: Trace-cache outcome of the last `run()` under
        #: ``engine="retime"``: a stored `ScheduleTrace` was found
        #: (trace_hit) or not (trace_miss); a fresh one was captured
        #: and published (trace_captured).
        self.trace_hit = False
        self.trace_miss = False
        self.trace_captured = False

    @classmethod
    def from_source(
        cls,
        source: Union[str, Module],
        func_name: str,
        args_builder: Callable[[StandaloneAccelerator], list],
        **kwargs,
    ) -> "SimContext":
        """Context around raw kernel source and a staging callable."""
        return cls(source=source, func_name=func_name, args_builder=args_builder,
                   **kwargs)

    # -- lifecycle phases -------------------------------------------------
    @property
    def accelerator(self) -> Optional[StandaloneAccelerator]:
        """The built `StandaloneAccelerator` (None before `build`/after `reset`)."""
        return self._acc

    @property
    def engine_used(self) -> Optional[str]:
        """Engine that executed the last run (None before a run, or
        when the result came straight from the run cache)."""
        return self._acc.engine_used if self._acc is not None else None

    @property
    def fallback_reason(self) -> Optional[str]:
        """Why a requested graph run fell back to dynamic, if it did."""
        return self._acc.fallback_reason if self._acc is not None else None

    def cache_key(self) -> str:
        """Content hash of this context's configuration (workload mode)."""
        if self.workload is None:
            raise ValueError("cache keys are only defined in workload mode")
        return run_cache_key(self.source, self.func_name, seed=self.seed,
                             pipeline=self.pipeline, **self.acc_kwargs)

    def split_key(self) -> tuple[str, str]:
        """The two-level ``(datapath_key, memory_key)`` content address
        (workload mode).  Contexts with equal datapath keys are
        schedule-equivalent: one `ScheduleTrace` re-times all of them
        (see `repro.engine.retime`)."""
        if self.workload is None:
            raise ValueError("cache keys are only defined in workload mode")
        return split_cache_key(self.source, self.func_name, seed=self.seed,
                               pipeline=self.pipeline, **self.acc_kwargs)

    def build(self) -> StandaloneAccelerator:
        """Phase 1: compile (once, store-aware) and wire the system."""
        if self._acc is None:
            # The hub exists before the compile so build-stage timings
            # land on the ``build`` trace channel.
            if self.trace is not None and self.trace_hub is None:
                self.trace_hub = self.trace.make_hub()
            if self._module is None:
                self._module = self._resolve_module()
            self._acc = StandaloneAccelerator(self._module, self.func_name,
                                              artifact_store=self.artifact_store,
                                              engine=self.engine,
                                              **self.acc_kwargs)
            if self.trace_hub is not None:
                self._acc.system.attach_trace_hub(self.trace_hub)
            if self.faults:
                self.fault_injector = FaultInjector(self.faults)
                self.fault_injector.attach(self._acc.system)
            if self.sanitize:
                from repro.sim.sanitizer import AccessSanitizer

                self.sanitizer = self._acc.system.attach_sanitizer(
                    AccessSanitizer())
        return self._acc

    def _resolve_module(self) -> Module:
        """The kernel IR: prebuilt if provided, else one staged compile."""
        if self.module_input is not None:
            if isinstance(self.module_input, Artifact):
                return self.module_input.module
            return self.module_input
        if isinstance(self.source, Module):
            return self.source
        from repro.build.pipeline import build_module

        return build_module(
            self.source, self.func_name, pipeline=self.pipeline,
            unroll_factor=self.acc_kwargs.get("unroll_factor", 1),
            store=self.artifact_store, trace_hub=self.trace_hub,
        ).module

    def stage(self) -> list:
        """Phase 2: place the dataset in accelerator memory, build the arg list."""
        acc = self.build()
        if self.workload is not None:
            self._data = self.workload.make_data(np.random.default_rng(self.seed))
            self._args, self._addresses = self.workload.stage(acc, self._data)
        else:
            self._args = self.args_builder(acc)
        return self._args

    def run(self) -> RunResult:
        """Phases 1-4: build, stage, drain the event loop, collect stats.

        Consults the cache first (workload mode); a hit skips simulation
        entirely.  A context that already ran is reset transparently, so
        ``ctx.run()`` is always a fresh, deterministic run.
        """
        key: Optional[str] = None
        self.cache_hit = False
        if self.cache is not None and not self.faults and not self.sanitize:
            # Faulty runs never touch the cache: an injected corruption
            # must not be served back as a clean result (or vice versa).
            key = self.cache_key()
            cached = self.cache.get(key)
            if cached is not None:
                self.cache_hit = True
                self.last_result = cached
                return cached
        if self._ran:
            self.reset()
        acc = self.build()
        args = self._args if self._args is not None else self.stage()
        # Incremental re-simulation: under engine="retime" (workload
        # mode, no faults), look up the ScheduleTrace for this context's
        # *datapath* key in the artifact store and replay it against
        # this memory configuration; on a miss, run the graph engine
        # once with capture enabled and publish the trace so every
        # later context sharing the datapath key re-times for free.
        self.trace_hit = False
        self.trace_miss = False
        self.trace_captured = False
        schedule_trace = None
        capture_trace = False
        datapath_key: Optional[str] = None
        if (self.engine == "retime" and self.workload is not None
                and not self.faults and not self.sanitize
                and self.acc_kwargs.get("memory", "spm") != "cache"):
            # (cache-backed memory can never replay — resolve_engine
            # sends it down the dynamic path — so don't touch the
            # trace store for it.)
            from repro.build.pipeline import BuildPipeline
            from repro.engine.retime import TRACE_COUNTERS

            datapath_key = self.split_key()[0]
            stored = BuildPipeline(store=self.artifact_store).trace(datapath_key)
            if stored is not None:
                TRACE_COUNTERS.hits += 1
                self.trace_hit = True
                schedule_trace = stored.payload
            else:
                TRACE_COUNTERS.misses += 1
                self.trace_miss = True
                capture_trace = True
        result = acc.run(args, max_ticks=self.max_ticks, max_events=self.max_events,
                         watchdog=self._make_watchdog(acc.system),
                         schedule_trace=schedule_trace,
                         capture_trace=capture_trace)
        if datapath_key is not None:
            from repro.build.pipeline import BuildPipeline
            from repro.engine.retime import TRACE_COUNTERS

            if acc.engine_used == "retime":
                TRACE_COUNTERS.retimed_runs += 1
            if acc.captured_trace is not None:
                TRACE_COUNTERS.captures += 1
                self.trace_captured = True
                BuildPipeline(store=self.artifact_store).trace(
                    datapath_key, acc.captured_trace)
        self._ran = True
        if self.trace_hub is not None:
            result.trace_summary = self.trace_hub.summary()
        if self.sanitizer is not None:
            result.sanitizer = self.sanitizer.summary()
        if self.verify and self.workload is not None:
            self.workload.verify(acc, self._addresses, self._data)
        if key is not None:
            self.cache.put(key, result)
        self.last_result = result
        return result

    def _make_watchdog(self, system: System) -> Optional[SimWatchdog]:
        """Resolve the watchdog spec against the built system.

        ``timeout_s`` alone gets a wall-clock-only watchdog (no livelock
        budget); combined with an explicit watchdog it sets/overrides
        the wall-clock deadline on it.
        """
        watchdog = coerce_watchdog(self.watchdog, system)
        if self.timeout_s is not None:
            if watchdog is None:
                watchdog = SimWatchdog(livelock_cycles=None)
                watchdog.bind_system(system)
            watchdog.wall_clock_s = self.timeout_s
        return watchdog

    def reset(self) -> None:
        """Tear down the built system so the context can run again.

        Resets the live system (event queue, object state, stats, memory
        allocator) and drops it; the next `run()` rebuilds from the
        cached compile, producing an identical result.
        """
        if self._acc is not None:
            if self.trace_hub is not None:
                self._acc.system.detach_trace_hub()
            if self.fault_injector is not None:
                self.fault_injector.detach()
            if self.sanitizer is not None:
                self._acc.system.detach_sanitizer()
            self._acc.reset()
        self._acc = None
        self.fault_injector = None
        self.sanitizer = None
        self.trace_hub = None
        self._data = None
        self._addresses = None
        self._args = None
        self._ran = False

    # -- pickling (ProcessPoolExecutor ships contexts, not systems) -------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Live simulator state is full of closures and cyclic wiring;
        # only the spec crosses process boundaries.
        for live in ("_module", "_acc", "_data", "_addresses", "_args",
                     "last_result", "trace_hub", "fault_injector",
                     "sanitizer"):
            state[live] = None
        state["_ran"] = False
        # Caches/stores are owned by the parent process.  A prebuilt
        # module_input, however, *does* cross: `Module` pickles
        # losslessly, and shipping it is exactly how compile-once
        # sweeps avoid re-running the frontend in every worker.
        state["cache"] = None
        state["artifact_store"] = None
        # A bound watchdog instance holds engine references; ship the
        # picklable spec instead and re-bind in the worker.
        from repro.faults import watchdog_spec

        state["watchdog"] = watchdog_spec(self.watchdog)
        return state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        what = self.workload.name if self.workload is not None else self.func_name
        state = "built" if self._acc is not None else "unbuilt"
        return f"<SimContext {what} ({state})>"
