"""Constant folding and trivial algebraic simplification.

Folds binops/casts/comparisons/selects whose operands are constants by
delegating to `repro.ir.semantics` (so folding and execution can never
disagree), plus identity simplifications (x+0, x*1, x*0, select with a
constant condition).  Conditional branches on constants are rewritten
to unconditional ones, leaving dead blocks for SimplifyCFG to collect.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.instructions import (
    BinaryOp,
    Branch,
    Cast,
    FCmp,
    ICmp,
    Phi,
    Select,
)
from repro.ir.module import Function
from repro.ir.semantics import EvalError, eval_binop, eval_cast, eval_fcmp, eval_icmp
from repro.ir.types import I1
from repro.ir.values import Constant, Instruction, Value
from repro.passes.pass_manager import FunctionPass


class ConstantFold(FunctionPass):
    name = "constfold"

    def run(self, func: Function) -> bool:
        changed_any = False
        while True:
            # One sweep: fold in program order, substituting operands as
            # we go so chains collapse within a single pass; apply any
            # remaining (phi / cross-block-cycle) uses in one batch at
            # the end.  Keeps the pass O(rounds * n) instead of O(n^2).
            replacements: dict[Instruction, Value] = {}

            def resolve(value: Value) -> Value:
                while isinstance(value, Instruction) and value in replacements:
                    value = replacements[value]
                return value

            changed = False
            for block in func.blocks:
                for inst in list(block.instructions):
                    for operand in list(inst.operands):
                        if isinstance(operand, Instruction) and operand in replacements:
                            inst.replace_operand(operand, resolve(operand))
                    replacement = self._fold(inst)
                    if replacement is None:
                        continue
                    replacements[inst] = replacement
                    block.remove(inst)
                    changed = True
            if replacements:
                for block in func.blocks:
                    for inst in block.instructions:
                        for operand in list(inst.operands):
                            if isinstance(operand, Instruction) and operand in replacements:
                                inst.replace_operand(operand, resolve(operand))
            changed |= self._fold_branches(func)
            changed_any |= changed
            if not changed:
                return changed_any

    # ------------------------------------------------------------------
    def _fold(self, inst: Instruction) -> Optional[Value]:
        try:
            if isinstance(inst, BinaryOp):
                return self._fold_binop(inst)
            if isinstance(inst, ICmp):
                a, b = inst.operands
                if isinstance(a, Constant) and isinstance(b, Constant):
                    return Constant(I1, eval_icmp(inst.pred, a.type, a.value, b.value))
            if isinstance(inst, FCmp):
                a, b = inst.operands
                if isinstance(a, Constant) and isinstance(b, Constant):
                    return Constant(I1, eval_fcmp(inst.pred, a.value, b.value))
            if isinstance(inst, Cast):
                src = inst.src
                if isinstance(src, Constant):
                    return Constant(
                        inst.type, eval_cast(inst.opcode, src.type, inst.type, src.value)
                    )
            if isinstance(inst, Select):
                cond, tv, fv = inst.operands
                if isinstance(cond, Constant):
                    return tv if cond.value else fv
            if isinstance(inst, Phi) and inst.incoming:
                values = [v for v, __ in inst.incoming]
                first = values[0]
                if all(v is first for v in values[1:]) or (
                    isinstance(first, Constant) and all(v == first for v in values)
                ):
                    if first is not inst:
                        return first
        except EvalError:
            return None
        return None

    def _fold_binop(self, inst: BinaryOp) -> Optional[Value]:
        a, b = inst.lhs, inst.rhs
        if isinstance(a, Constant) and isinstance(b, Constant):
            return Constant(inst.type, eval_binop(inst.opcode, inst.type, a.value, b.value))
        # Identities (integer only: FP identities are unsafe under NaN/-0).
        if inst.type.is_int:
            if inst.opcode in ("add", "or", "xor", "sub", "shl", "lshr", "ashr"):
                if isinstance(b, Constant) and b.value == 0:
                    return a
                if (
                    inst.opcode in ("add", "or", "xor")
                    and isinstance(a, Constant)
                    and a.value == 0
                ):
                    return b
            if inst.opcode == "mul":
                for x, y in ((a, b), (b, a)):
                    if isinstance(x, Constant):
                        if x.value == 1:
                            return y
                        if x.value == 0:
                            return Constant(inst.type, 0)
            if inst.opcode in ("sdiv", "udiv") and isinstance(b, Constant) and b.value == 1:
                return a
        return None

    # ------------------------------------------------------------------
    @staticmethod
    def _replace_all_uses(func: Function, old: Instruction, new: Value) -> None:
        for block in func.blocks:
            for inst in block.instructions:
                if inst is not old:
                    inst.replace_operand(old, new)

    @staticmethod
    def _fold_branches(func: Function) -> bool:
        changed = False
        for block in func.blocks:
            term = block.terminator
            if (
                isinstance(term, Branch)
                and term.is_conditional
                and isinstance(term.condition, Constant)
            ):
                taken = term.true_target if term.condition.value else term.false_target
                not_taken = term.false_target if term.condition.value else term.true_target
                block.instructions.pop()
                new_term = Branch(taken)
                new_term.parent = block
                block.instructions.append(new_term)
                if not_taken is not taken:
                    for phi in not_taken.phis():
                        phi.incoming = [
                            (v, p) for v, p in phi.incoming if p is not block
                        ]
                        phi.operands = [v for v, __ in phi.incoming]
                changed = True
        return changed
