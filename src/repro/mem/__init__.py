"""Memory system models.

The functional/timing split is central (see DESIGN.md): data lives in
backing `MemoryImage` stores owned by DRAM and scratchpads, while caches
and interconnect are timing overlays.  This is what lets gem5-SALAM (and
this reproduction) sweep memory parameters without perturbing the
datapath — the decoupling the paper demonstrates against gem5-Aladdin.
"""

from repro.mem.dram import DRAM
from repro.mem.spm import Scratchpad
from repro.mem.cache import Cache
from repro.mem.xbar import Crossbar
from repro.mem.dma import BlockDMA, StreamDMA
from repro.mem.stream_buffer import StreamBuffer
from repro.mem.stream_port import StreamPort
from repro.mem.memctrl import AcceleratorMemController, MemRequest

__all__ = [
    "DRAM",
    "Scratchpad",
    "Cache",
    "Crossbar",
    "BlockDMA",
    "StreamDMA",
    "StreamBuffer",
    "StreamPort",
    "AcceleratorMemController",
    "MemRequest",
]
