"""Power and area aggregation.

Collects the categories of the paper's Fig. 4: dynamic energy from
functional units, internal registers, and SPM reads/writes, plus static
(leakage) power from functional units, registers, and SPM.  Dynamic
power is energy divided by runtime; everything is reported in mW so the
stacked-percentage breakdown can be reproduced directly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass
class AreaReport:
    """Area in square micrometres by component."""

    functional_units_um2: float = 0.0
    registers_um2: float = 0.0
    spm_um2: float = 0.0

    @property
    def datapath_um2(self) -> float:
        return self.functional_units_um2 + self.registers_um2

    @property
    def total_um2(self) -> float:
        return self.datapath_um2 + self.spm_um2

    @property
    def total_mm2(self) -> float:
        return self.total_um2 / 1e6

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AreaReport":
        return cls(**data)


@dataclass
class PowerReport:
    """Static power (mW) and dynamic energy (pJ) by Fig. 4 category."""

    runtime_ns: float = 0.0
    # Dynamic energies (pJ), converted to power on demand.
    fu_dynamic_pj: float = 0.0
    register_dynamic_pj: float = 0.0
    spm_read_pj: float = 0.0
    spm_write_pj: float = 0.0
    # Static power (mW).
    fu_leakage_mw: float = 0.0
    register_leakage_mw: float = 0.0
    spm_leakage_mw: float = 0.0

    def _to_mw(self, energy_pj: float) -> float:
        if self.runtime_ns <= 0:
            return 0.0
        # pJ / ns == mW.
        return energy_pj / self.runtime_ns

    # -- dynamic power ----------------------------------------------------
    @property
    def fu_dynamic_mw(self) -> float:
        return self._to_mw(self.fu_dynamic_pj)

    @property
    def register_dynamic_mw(self) -> float:
        return self._to_mw(self.register_dynamic_pj)

    @property
    def spm_read_mw(self) -> float:
        return self._to_mw(self.spm_read_pj)

    @property
    def spm_write_mw(self) -> float:
        return self._to_mw(self.spm_write_pj)

    @property
    def dynamic_mw(self) -> float:
        return (
            self.fu_dynamic_mw
            + self.register_dynamic_mw
            + self.spm_read_mw
            + self.spm_write_mw
        )

    @property
    def static_mw(self) -> float:
        return self.fu_leakage_mw + self.register_leakage_mw + self.spm_leakage_mw

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.static_mw

    # -- Fig. 4 breakdown ---------------------------------------------------
    def breakdown(self) -> dict[str, float]:
        """Power by category (mW), in Fig. 4's legend order."""
        return {
            "dynamic_functional_units": self.fu_dynamic_mw,
            "dynamic_internal_registers": self.register_dynamic_mw,
            "dynamic_spm_read": self.spm_read_mw,
            "dynamic_spm_write": self.spm_write_mw,
            "static_functional_units": self.fu_leakage_mw,
            "static_internal_registers": self.register_leakage_mw,
            "static_spm": self.spm_leakage_mw,
        }

    def breakdown_percent(self) -> dict[str, float]:
        total = self.total_mw
        if total <= 0:
            return {key: 0.0 for key in self.breakdown()}
        return {key: 100.0 * value / total for key, value in self.breakdown().items()}

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "PowerReport":
        return cls(**data)

    def merged(self, other: "PowerReport") -> "PowerReport":
        """Combine two reports (e.g. several accelerators in a cluster)."""
        return PowerReport(
            runtime_ns=max(self.runtime_ns, other.runtime_ns),
            fu_dynamic_pj=self.fu_dynamic_pj + other.fu_dynamic_pj,
            register_dynamic_pj=self.register_dynamic_pj + other.register_dynamic_pj,
            spm_read_pj=self.spm_read_pj + other.spm_read_pj,
            spm_write_pj=self.spm_write_pj + other.spm_write_pj,
            fu_leakage_mw=self.fu_leakage_mw + other.fu_leakage_mw,
            register_leakage_mw=self.register_leakage_mw + other.register_leakage_mw,
            spm_leakage_mw=self.spm_leakage_mw + other.spm_leakage_mw,
        )
