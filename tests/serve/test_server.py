"""End-to-end job-server tests over a real socket.

Each test starts a `JobServer` on a background thread bound to an
ephemeral port and drives it through `ServeClient` — the same path
``repro submit`` and the CI smoke use.
"""

import time

import pytest

import repro
from repro.exec.context import SimContext
from repro.exec.parallel import ParallelSweep
from repro.serve import ServeClient, ServeError, start_server_thread
from repro.serve.jobs import JobState
from repro.serve.workers import job_dedup_key, run_spec_kwargs
from repro.workloads import get_workload

RUN_SPEC = {"workload": "gemm_dse", "ports": 4, "unroll": 2, "seed": 7}


@pytest.fixture
def server():
    with start_server_thread(workers=2) as handle:
        yield handle


@pytest.fixture
def client(server):
    return ServeClient(port=server.port)


def test_health_and_version(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert client.version() == repro.__version__


def test_run_job_byte_identical_to_direct_simcontext(client):
    job = client.submit("run", dict(RUN_SPEC))
    job = client.wait(job["id"])
    assert job["state"] == JobState.DONE
    assert not job["cache_hit"]
    direct = SimContext(get_workload("gemm_dse"), seed=7,
                        **run_spec_kwargs(RUN_SPEC)).run()
    assert job["result"] == direct.to_dict()


def test_second_identical_submission_is_a_cache_hit(client):
    first = client.wait(client.submit("run", dict(RUN_SPEC))["id"])
    second = client.submit("run", dict(RUN_SPEC))
    # The POST response itself is already terminal: no queueing, no
    # compile, the cached result attached at submit time.
    assert second["state"] == JobState.DONE
    assert second["cache_hit"]
    assert second["result"] == first["result"]
    stats = client.stats()
    assert stats["run_cache"]["hits"] >= 1
    assert stats["queue"]["executed"] == 1


def test_concurrent_duplicates_execute_exactly_once(client):
    client.pause()  # deterministic: both submissions land while queued
    a = client.submit("run", dict(RUN_SPEC))
    b = client.submit("run", dict(RUN_SPEC))
    assert b["deduped_of"] == a["id"]
    client.resume()
    done_a = client.wait(a["id"])
    done_b = client.wait(b["id"])
    assert done_a["state"] == done_b["state"] == JobState.DONE
    assert done_a["result"] == done_b["result"]
    stats = client.stats()["queue"]
    assert stats["executed"] == 1
    assert stats["dedup_hits"] == 1


def test_cancelled_queued_job_never_runs(client):
    client.pause()
    job = client.submit("run", dict(RUN_SPEC, ports=16))
    assert job["state"] == JobState.QUEUED
    cancelled = client.cancel(job["id"])
    assert cancelled["state"] == JobState.CANCELLED
    client.resume()
    time.sleep(0.2)  # give a worker the chance to (wrongly) pick it up
    assert client.job(job["id"])["state"] == JobState.CANCELLED
    assert client.stats()["queue"]["executed"] == 0


def test_cancel_done_job_is_a_conflict(client):
    job = client.wait(client.submit("run", dict(RUN_SPEC))["id"])
    with pytest.raises(ServeError) as excinfo:
        client.cancel(job["id"])
    assert excinfo.value.status == 409


def test_crashing_job_reports_failure_and_server_survives(client):
    job = client.wait(client.submit("run", {"workload": "no_such_kernel"})["id"])
    assert job["state"] == JobState.FAILED
    assert job["failure"]["error_type"] == "KeyError"
    assert job["failure"]["traceback_tail"]
    assert job["failure"]["reason"] == "crash"
    # The worker survived: the server still answers and still executes.
    assert client.healthz()["status"] == "ok"
    ok = client.wait(client.submit("run", dict(RUN_SPEC))["id"])
    assert ok["state"] == JobState.DONE


def test_sweep_job_matches_direct_parallel_sweep(client):
    spec = {"workload": "gemm_dse", "ports": [1, 2], "unroll": 1, "seed": 7}
    job = client.wait(client.submit("sweep", spec)["id"], timeout=300.0)
    assert job["state"] == JobState.DONE
    rows = job["result"]["rows"]
    direct = ParallelSweep().run(
        get_workload("gemm_dse"), {"ports": [1, 2]},
        lambda params: run_spec_kwargs(dict(spec, ports=params["ports"])),
        seed=7, unroll_factor=1)
    assert [dict(r, pareto=None) for r in rows] \
        == [dict(p.record(), pareto=None) for p in direct]


def test_sweep_events_stream_per_point_progress(client):
    spec = {"workload": "gemm_dse", "ports": [1, 2], "unroll": 1}
    job = client.submit("sweep", spec)
    events = list(client.events(job["id"]))
    names = [event["event"] for event in events]
    assert names[0] == "queued"
    assert names[-1] == "done"
    points = [event for event in events if event["event"] == "point"]
    assert [(p["done"], p["total"]) for p in points] == [(1, 2), (2, 2)]
    assert all(p["ok"] for p in points)


def test_compile_job_returns_ir_and_artifact_key(client):
    job = client.wait(client.submit("compile", {"workload": "gemm_dse"})["id"])
    assert job["state"] == JobState.DONE
    assert "define void @gemm_dse" in job["result"]["ir"]
    assert len(job["result"]["artifact_key"]) == 64
    # Same kernel again: the shared artifact store serves it.
    again = client.wait(client.submit("compile", {"workload": "gemm_dse",
                                                  "force": 2})["id"])
    assert again["result"]["store_hit"]
    assert again["result"]["artifact_key"] == job["result"]["artifact_key"]


def test_analyze_job_returns_diagnostics(client):
    job = client.wait(client.submit("analyze", {"workload": "gemm_dse"})["id"])
    assert job["state"] == JobState.DONE
    assert job["result"]["subject"] == "gemm_dse"
    assert "diagnostics" in job["result"]
    assert "counts" in job["result"]


def test_analyze_job_scenario_path(client):
    # Generated scenarios lint statically through the same job kind.
    job = client.wait(client.submit("analyze", {"scenario": "gen:1:racy"})["id"])
    assert job["state"] == JobState.DONE
    assert any(d["code"] == "SYS304" for d in job["result"]["diagnostics"])
    clean = client.wait(client.submit("analyze", {"scenario": "gen:1"})["id"])
    assert clean["state"] == JobState.DONE
    assert clean["result"]["counts"]["error"] == 0
    # An unknown scenario is a job failure, not a dead worker.
    bad = client.wait(client.submit("analyze", {"scenario": "nope"})["id"])
    assert bad["state"] == JobState.FAILED
    assert "unknown scenario" in bad["failure"]["message"]


def test_stats_shape(client):
    stats = client.stats()
    assert stats["workers"] == 2
    for section in ("queue", "run_cache", "artifact_store",
                    "stage_counters"):
        assert section in stats
    assert set(stats["queue"]["by_state"]) == set(JobState.ALL)


def test_bad_requests_are_client_errors(client):
    with pytest.raises(ServeError) as excinfo:
        client.submit("teleport", {})
    assert excinfo.value.status == 400
    with pytest.raises(ServeError) as excinfo:
        client.job("j999999")
    assert excinfo.value.status == 404


def test_dedup_key_equals_run_cache_key_class():
    # Two specs that differ only in JSON key order / irrelevant type
    # representation must produce one dedup key.
    a = job_dedup_key("run", {"workload": "gemm_dse", "ports": 4, "unroll": 2})
    b = job_dedup_key("run", {"unroll": 2, "ports": 4, "workload": "gemm_dse"})
    assert a == b
    assert a.startswith("run:")
    # Different configurations must not collide.
    c = job_dedup_key("run", {"workload": "gemm_dse", "ports": 8, "unroll": 2})
    assert c != a
