"""Per-job retry policy, exponential backoff, and the circuit breaker.

Unit tests drive `JobQueue`/`CircuitBreaker` synchronously (injected
clocks, zero backoff); the integration tests go through a real server
on a thread, the same way ``repro submit --retries`` would.
"""

import time

import pytest

from repro.serve import ServeClient, start_server_thread
from repro.serve.jobs import CircuitBreaker, JobQueue, JobState
from repro.serve.workers import (
    SpecError,
    job_dedup_key,
    job_retry_policy,
    retry_delay,
)

FAILING_SPEC = {"workload": "no_such_kernel", "seed": 7}


# ----------------------------------------------------------------------
# Backoff schedule
# ----------------------------------------------------------------------
def test_retry_delay_is_exponential_with_cap():
    assert [retry_delay(0.5, n) for n in (1, 2, 3, 4)] \
        == [0.5, 1.0, 2.0, 4.0]
    # Capped, deterministically, no matter how high attempts climb.
    assert retry_delay(0.5, 10) == 30.0
    assert retry_delay(0.5, 50) == 30.0
    assert retry_delay(1.0, 3, cap_s=2.5) == 2.5


def test_job_retry_policy_reads_spec_defensively():
    assert job_retry_policy({}) == (0, 0.5)
    assert job_retry_policy({"retries": 3, "backoff_s": 2.0}) == (3, 2.0)
    assert job_retry_policy({"retries": -5}) == (0, 0.5)
    assert job_retry_policy({"retries": "nope", "backoff_s": "bad"}) \
        == (0, 0.5)


# ----------------------------------------------------------------------
# Queue-level retry mechanics
# ----------------------------------------------------------------------
def test_requeue_gates_claim_until_backoff_expires():
    queue = JobQueue()
    job = queue.submit("run", {})
    assert queue.claim() is job
    queue.requeue(job, delay_s=60.0, reason="crash")
    assert job.state == JobState.QUEUED
    assert queue.claim() is None  # still inside the backoff window
    job.not_before_s = time.time() - 1  # fast-forward the gate
    assert queue.claim() is job
    assert job.attempts == 2
    assert queue.retried == 1
    names = [e["event"] for e in job.events]
    assert names == ["queued", "running", "retrying", "running"]
    retrying = job.events[2]
    assert retrying["reason"] == "crash"
    assert retrying["attempt"] == 1


def test_backoff_does_not_block_other_jobs():
    queue = JobQueue()
    stuck = queue.submit("run", {"n": 1})
    other = queue.submit("run", {"n": 2})
    assert queue.claim() is stuck
    queue.requeue(stuck, delay_s=60.0)
    # The backing-off job must not head-of-line block the queue.
    assert queue.claim() is other


def test_followers_track_a_retrying_primary():
    queue = JobQueue()
    primary = queue.submit("run", {}, dedup_key="k")
    follower = queue.submit("run", {}, dedup_key="k")
    queue.claim()
    assert follower.state == JobState.RUNNING
    queue.requeue(primary, delay_s=0.0)
    assert follower.state == JobState.QUEUED
    assert queue.claim() is primary
    queue.resolve(primary, result={"v": 1})
    assert follower.result == {"v": 1}


# ----------------------------------------------------------------------
# Dedup-key fallback (narrowed catch)
# ----------------------------------------------------------------------
def test_dedup_fallback_reports_reason():
    reasons = []
    key = job_dedup_key("run", {"workload": "no_such_kernel"},
                        on_fallback=reasons.append)
    assert key.startswith("run:")
    assert len(reasons) == 1
    assert "KeyError" in reasons[0]
    # The fallback key is still deterministic: identical broken specs
    # coalesce with each other.
    again = job_dedup_key("run", {"workload": "no_such_kernel"})
    assert key == again


def test_dedup_fallback_covers_malformed_knobs():
    reasons = []
    job_dedup_key("run", {"workload": "gemm_dse", "ports": "many"},
                  on_fallback=reasons.append)
    assert len(reasons) == 1
    assert "ValueError" in reasons[0]


def test_unexpected_errors_are_not_swallowed(monkeypatch):
    import repro.serve.workers as workers

    def explode(spec):
        raise RuntimeError("server bug")

    monkeypatch.setattr(workers, "_spec_workload", explode)
    with pytest.raises(RuntimeError):
        job_dedup_key("run", {"workload": "gemm_dse"})


def test_bad_memory_knob_is_a_spec_error():
    reasons = []
    job_dedup_key("run", {"workload": "gemm_dse", "memory": "dram"},
                  on_fallback=reasons.append)
    assert "SpecError" in reasons[0]
    assert issubclass(SpecError, ValueError)


# ----------------------------------------------------------------------
# CircuitBreaker unit (injected clock)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


def test_breaker_opens_after_threshold_consecutive_failures():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=3, cooldown_s=30.0, clock=clock)
    for __ in range(2):
        breaker.record_failure("k")
    assert breaker.check("k") is None  # 2 < threshold: still closed
    breaker.record_failure("k")
    blocked = breaker.check("k")
    assert blocked is not None
    assert blocked["consecutive_failures"] == 3
    assert blocked["retry_in_s"] == pytest.approx(30.0)
    assert breaker.open_keys() == ["k"]


def test_success_resets_the_failure_streak():
    breaker = CircuitBreaker(threshold=2, clock=FakeClock())
    breaker.record_failure("k")
    breaker.record_success("k")
    breaker.record_failure("k")
    assert breaker.check("k") is None  # streak broken: never opened
    assert breaker.stats()["open_keys"] == 0


def test_half_open_admits_exactly_one_probe():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, cooldown_s=10.0, clock=clock)
    breaker.record_failure("k")
    assert breaker.check("k") is not None  # open
    clock.now += 10.0  # cooldown expired
    assert breaker.check("k") is None  # the single probe
    blocked = breaker.check("k")
    assert blocked is not None and blocked["probe_in_flight"]
    # Probe fails: re-opened for another full cooldown.
    breaker.record_failure("k")
    assert breaker.check("k") is not None
    clock.now += 10.0
    assert breaker.check("k") is None
    breaker.record_success("k")  # probe succeeds: fully closed
    assert breaker.check("k") is None
    assert breaker.stats()["tracked_keys"] == 0


def test_keys_are_independent():
    breaker = CircuitBreaker(threshold=1, clock=FakeClock())
    breaker.record_failure("bad")
    assert breaker.check("bad") is not None
    assert breaker.check("good") is None


# ----------------------------------------------------------------------
# Integration: retries and breaker through a real server
# ----------------------------------------------------------------------
def test_server_retries_failing_job_per_spec_policy():
    with start_server_thread(workers=1) as handle:
        client = ServeClient(port=handle.port)
        spec = dict(FAILING_SPEC, retries=2, backoff_s=0.0)
        job = client.wait(client.submit("run", spec)["id"])
        assert job["state"] == JobState.FAILED
        assert job["failure"]["attempts"] == 3  # 1 try + 2 retries
        assert job["attempts"] == 3
        events = list(client.events(job["id"], reconnect=False))
        names = [e["event"] for e in events]
        assert names.count("retrying") == 2
        assert names.count("running") == 3
        assert names[-1] == "failed"
        # The un-keyable spec announced why it fell back (satellite:
        # narrowed job_dedup_key catch records the reason).
        fallback = [e for e in events if e["event"] == "dedup_fallback"]
        assert len(fallback) == 1
        assert "KeyError" in fallback[0]["reason"]


def test_breaker_fails_fast_and_health_degrades():
    with start_server_thread(workers=1, breaker_threshold=1,
                             breaker_cooldown_s=3600.0) as handle:
        client = ServeClient(port=handle.port)
        first = client.wait(client.submit("run", dict(FAILING_SPEC))["id"])
        assert first["state"] == JobState.FAILED
        assert first["failure"]["error_type"] == "KeyError"
        # Identical spec again: the breaker is open — no worker burned.
        second = client.submit("run", dict(FAILING_SPEC))
        assert second["state"] == JobState.FAILED
        assert second["failure"]["error_type"] == "CircuitOpen"
        assert second["failure"]["reason"] == "circuit_open"
        assert client.healthz()["status"] == "degraded"
        assert client.healthz()["open_breakers"] == 1
        stats = client.stats()
        assert stats["breaker"]["open_keys"] == 1
        assert stats["queue"]["executed"] == 1  # the fast-fail never ran
        # A *different* spec is unaffected.
        ok = client.wait(client.submit("run", {
            "workload": "gemm_dse", "ports": 2, "unroll": 1})["id"])
        assert ok["state"] == JobState.DONE


def test_breaker_probe_after_cooldown_executes_for_real():
    with start_server_thread(workers=1, breaker_threshold=1,
                             breaker_cooldown_s=0.2) as handle:
        client = ServeClient(port=handle.port)
        client.wait(client.submit("run", dict(FAILING_SPEC))["id"])
        time.sleep(0.25)  # cooldown over: next submission is the probe
        probe = client.wait(client.submit("run", dict(FAILING_SPEC))["id"])
        assert probe["failure"]["error_type"] == "KeyError"  # really ran
        assert probe["attempts"] == 1
        assert client.stats()["queue"]["executed"] == 2
