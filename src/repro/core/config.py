"""Device configuration (the paper's "device config" file).

Constrains the accelerator datapath and tunes the runtime scheduler:
clock, functional-unit pool limits (absent = the default 1-to-1 mapping
of static instructions to dedicated units), per-class latency
overrides, memory issue widths (read/write ports), and queue sizes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional


@dataclass
class DeviceConfig:
    name: str = "acc"
    clock_freq_hz: float = 100e6  # 10 ns cycle, the Vivado HLS default

    # Datapath constraints: FU class -> pool size.  A class not listed
    # gets one dedicated unit per static instruction (paper default).
    fu_limits: dict[str, int] = field(default_factory=dict)
    # Per-class latency overrides (cycles).
    latency_overrides: dict[str, int] = field(default_factory=dict)

    # Runtime scheduler knobs.
    reservation_window: int = 128
    read_queue_size: int = 64
    write_queue_size: int = 64

    # Memory interface issue widths (Fig. 14's "read/write ports").
    read_ports: int = 2
    write_ports: int = 2

    # Ideal one-cycle memory (the "datapath only" configuration).
    ideal_memory: bool = False

    def validate(self) -> None:
        if self.clock_freq_hz <= 0:
            raise ValueError("clock frequency must be positive")
        for knob in ("reservation_window", "read_queue_size", "write_queue_size",
                     "read_ports", "write_ports"):
            if getattr(self, knob) < 1:
                raise ValueError(f"{knob} must be >= 1")
        for fu_class, limit in self.fu_limits.items():
            if limit < 1:
                raise ValueError(f"FU limit for '{fu_class}' must be >= 1, got {limit}")
        for fu_class, latency in self.latency_overrides.items():
            if latency < 0:
                raise ValueError(f"latency override for '{fu_class}' must be >= 0")

    @property
    def cycle_time_ns(self) -> float:
        return 1e9 / self.clock_freq_hz

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe representation (also the run-cache key material)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceConfig":
        return cls(**data)
