"""Job records, the dedup-aware priority queue, and the circuit breaker.

A `Job` is one client request: a kind (compile/run/sweep/analyze), a
JSON spec, a priority, and a lifecycle
(``queued -> running -> done | failed``, or ``cancelled`` before it
ever runs).  Every state change and every progress tick lands on the
job's ordered event log, which is what the SSE endpoint streams.

`JobQueue` holds the jobs.  Its defining feature is **request dedup**:
each job carries a content-addressed ``dedup_key`` (for run jobs, the
run-cache key itself — see `repro.serve.workers.job_dedup_key`), and a
submission whose key matches a still-active job does not queue a second
execution.  It becomes a *follower*: a full job record of its own that
resolves (result, failure, or cancellation of the primary) the moment
the primary resolves.  Twenty identical submissions cost one
simulation.

The queue is deliberately lock-free: every mutation happens on the
server's event loop (workers hand results back via
``call_soon_threadsafe``), and the unit tests drive it synchronously.
With a `repro.serve.journal.JobJournal` attached, every mutation is
also written to the append-only journal, which is what lets a
restarted server pick the queue back up (see ``adopt``).

`CircuitBreaker` is the queue's fail-fast policy: after K consecutive
failures of one dedup key the key is *open* — identical submissions
fail immediately with a structured reason instead of burning a worker
— until a cooldown expires and a single half-open probe is let
through.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.exec.failures import FailureRecord


class JobState:
    """The five job states (plain strings, JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    #: States a job can still leave.
    ACTIVE = (QUEUED, RUNNING)


#: Job kinds the worker pool knows how to execute.
JOB_KINDS = ("compile", "run", "sweep", "analyze")


@dataclass
class Job:
    """One submitted request and everything that happened to it."""

    id: str
    kind: str
    spec: dict
    priority: int = 0
    state: str = JobState.QUEUED
    #: Content hash of (kind, spec); identical active requests coalesce.
    dedup_key: Optional[str] = None
    #: Set on followers: the id of the job actually executing.
    deduped_of: Optional[str] = None
    #: True when the result came from the run cache (or a dedup primary
    #: that itself hit the cache) instead of a fresh simulation.
    cache_hit: bool = False
    result: Optional[dict] = None
    failure: Optional[dict] = None
    submitted_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    #: How many times a worker has claimed this job (retries increment).
    attempts: int = 0
    #: Retry backoff gate: ``claim()`` skips the job until this time.
    not_before_s: Optional[float] = None
    #: Ordered progress log: [{"seq": n, "t": ..., "event": ..., ...}].
    events: list = field(default_factory=list)
    #: Optional journal hook called with ``(job, event)`` per publish.
    sink: Optional[Callable] = field(default=None, repr=False, compare=False)

    @property
    def terminal(self) -> bool:
        return self.state not in JobState.ACTIVE

    def publish(self, event: str, **detail) -> None:
        """Append one progress event (thread-safe: a bare list append)."""
        record = {
            "seq": len(self.events),
            "t": round(time.time(), 6),
            "event": event,
            **detail,
        }
        self.events.append(record)
        sink = self.sink
        if sink is not None:
            sink(self, record)

    def to_dict(self, include_result: bool = True) -> dict:
        payload = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "dedup_key": self.dedup_key,
            "deduped_of": self.deduped_of,
            "cache_hit": self.cache_hit,
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "attempts": self.attempts,
            "events": len(self.events),
            "failure": self.failure,
        }
        if include_result:
            payload["result"] = self.result
        return payload

    # -- journal round trip --------------------------------------------
    def to_journal(self) -> dict:
        """Full, lossless payload (unlike `to_dict`, includes the spec
        and the event log) — what the write-ahead journal persists."""
        return {
            "id": self.id,
            "kind": self.kind,
            "spec": self.spec,
            "priority": self.priority,
            "state": self.state,
            "dedup_key": self.dedup_key,
            "deduped_of": self.deduped_of,
            "cache_hit": self.cache_hit,
            "result": self.result,
            "failure": self.failure,
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "attempts": self.attempts,
            "events": list(self.events),
        }

    @classmethod
    def from_journal(cls, payload: dict) -> "Job":
        state = payload.get("state", JobState.QUEUED)
        if state not in JobState.ALL:
            raise ValueError(f"unknown job state {state!r}")
        return cls(
            id=payload["id"],
            kind=payload["kind"],
            spec=dict(payload.get("spec") or {}),
            priority=int(payload.get("priority", 0)),
            state=state,
            dedup_key=payload.get("dedup_key"),
            deduped_of=payload.get("deduped_of"),
            cache_hit=bool(payload.get("cache_hit", False)),
            result=payload.get("result"),
            failure=payload.get("failure"),
            submitted_s=float(payload.get("submitted_s") or 0.0),
            started_s=payload.get("started_s"),
            finished_s=payload.get("finished_s"),
            attempts=int(payload.get("attempts", 0)),
            events=list(payload.get("events") or []),
        )


class JobQueue:
    """Priority queue of jobs with content-addressed request dedup.

    ``claim()`` hands out the highest-priority queued job (FIFO within
    a priority level); ``resolve()`` finishes it and fans the outcome
    out to every follower that coalesced onto it.  ``pause()`` stops
    ``claim()`` from yielding work — submissions still queue — which is
    both an operational drain switch and what makes cancellation/dedup
    deterministically testable.  ``requeue()`` puts a failed job back
    with a backoff gate (per-job retry policy), and ``adopt()`` inserts
    a job recovered from the journal after a restart.
    """

    def __init__(self, journal=None) -> None:
        self.jobs: dict[str, Job] = {}
        self.journal = journal
        self._heap: list[tuple[int, int, str]] = []
        self._counter = itertools.count()
        #: dedup_key -> id of the active (queued/running) primary.
        self._active_by_key: dict[str, str] = {}
        #: primary id -> follower ids awaiting its outcome.
        self._followers: dict[str, list[str]] = {}
        self.paused = False
        self.dedup_hits = 0
        self.executed = 0
        self.cancelled = 0
        self.retried = 0

    # -- submission ----------------------------------------------------
    def submit(self, kind: str, spec: dict, priority: int = 0,
               dedup_key: Optional[str] = None) -> Job:
        """Queue a request; an identical active one absorbs it instead."""
        job = Job(id=f"j{next(self._counter):06d}", kind=kind, spec=spec,
                  priority=priority, dedup_key=dedup_key)
        self.jobs[job.id] = job
        if self.journal is not None:
            # Submit record first, then the event sink: replay must see
            # the job before any of its events.
            self.journal.record_submit(job)
            job.sink = self.journal.record_event_sink
        job.publish("queued")
        primary_id = (self._active_by_key.get(dedup_key)
                      if dedup_key is not None else None)
        if primary_id is not None:
            primary = self.jobs[primary_id]
            job.deduped_of = primary_id
            job.state = primary.state  # mirrors queued/running
            self._followers.setdefault(primary_id, []).append(job.id)
            self.dedup_hits += 1
            job.publish("deduped", of=primary_id)
            self._journal_state(job)
            return job
        if dedup_key is not None:
            self._active_by_key[dedup_key] = job.id
        heapq.heappush(self._heap, (-priority, next(self._counter), job.id))
        return job

    def finish_immediately(self, job: Job, result: dict,
                           cache_hit: bool = False) -> None:
        """Short-circuit a job at submit time (run-cache hit)."""
        job.started_s = job.finished_s = time.time()
        job.state = JobState.DONE
        job.result = result
        job.cache_hit = cache_hit
        job.publish("cache_hit" if cache_hit else "done")
        self._release(job)
        self._resolve_followers(job)
        self._journal_state(job, via="immediate")

    def fail_immediately(self, job: Job, failure: FailureRecord) -> None:
        """Short-circuit a job at submit time with a structured failure
        (the circuit breaker's fail-fast path)."""
        job.started_s = job.finished_s = time.time()
        job.state = JobState.FAILED
        job.failure = failure.to_dict()
        job.publish(JobState.FAILED, reason=failure.reason)
        self._release(job)
        self._resolve_followers(job)
        self._journal_state(job, via="immediate")

    # -- worker side ---------------------------------------------------
    def claim(self) -> Optional[Job]:
        """Pop the next runnable job, or None (empty, paused, or every
        queued job is inside its retry-backoff window)."""
        if self.paused:
            return None
        now = time.time()
        deferred: list[tuple[int, int, str]] = []
        job: Optional[Job] = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            candidate = self.jobs[entry[2]]
            if candidate.state != JobState.QUEUED:
                continue  # cancelled while queued
            if (candidate.not_before_s is not None
                    and candidate.not_before_s > now):
                deferred.append(entry)  # still backing off; keep looking
                continue
            job = candidate
            break
        for entry in deferred:
            # Original (priority, counter) entries: FIFO order survives.
            heapq.heappush(self._heap, entry)
        if job is None:
            return None
        job.state = JobState.RUNNING
        job.started_s = time.time()
        job.attempts += 1
        job.not_before_s = None
        job.publish("running", attempt=job.attempts)
        self._journal_state(job)
        for follower in self._follower_jobs(job):
            follower.state = JobState.RUNNING
            follower.started_s = job.started_s
            follower.publish("running")
            self._journal_state(follower)
        return job

    def resolve(self, job: Job, result: Optional[dict] = None,
                failure: Optional[FailureRecord] = None,
                cache_hit: bool = False) -> None:
        """Finish a claimed job and fan the outcome out to followers."""
        job.finished_s = time.time()
        job.result = result
        job.failure = failure.to_dict() if failure is not None else None
        job.cache_hit = cache_hit
        job.state = JobState.FAILED if failure is not None else JobState.DONE
        job.publish(job.state)
        self.executed += 1
        self._release(job)
        self._resolve_followers(job)
        self._journal_state(job, via="resolve")

    def requeue(self, job: Job, delay_s: float = 0.0,
                reason: Optional[str] = None) -> None:
        """Put a failed attempt back in the queue with a backoff gate
        (the per-job retry policy).  The dedup key stays active, so
        identical submissions keep coalescing onto the retrying job."""
        job.state = JobState.QUEUED
        job.not_before_s = time.time() + delay_s if delay_s > 0 else None
        detail = {"attempt": job.attempts, "delay_s": round(delay_s, 3)}
        if reason is not None:
            detail["reason"] = reason
        job.publish("retrying", **detail)
        self.retried += 1
        heapq.heappush(self._heap, (-job.priority, next(self._counter),
                                    job.id))
        self._journal_state(job, via="retry")
        for follower in self._follower_jobs(job):
            follower.state = JobState.QUEUED
            follower.publish("retrying", of=job.id)
            self._journal_state(follower)

    # -- recovery ------------------------------------------------------
    def adopt(self, job: Job) -> bool:
        """Insert a job recovered from the journal; True if re-queued.

        Terminal jobs are kept verbatim so GET still serves their
        results.  Jobs that were ``queued``/``running`` at crash time
        go back in the queue (keeping their attempt counter — the next
        ``claim`` increments it), and active jobs sharing a dedup key
        re-coalesce: first adopted becomes primary, the rest followers.
        """
        self.jobs[job.id] = job
        if self.journal is not None:
            job.sink = self.journal.record_event_sink
        if job.terminal:
            return False
        was = job.state
        primary_id = (self._active_by_key.get(job.dedup_key)
                      if job.dedup_key is not None else None)
        if primary_id is not None and primary_id != job.id:
            primary = self.jobs[primary_id]
            job.deduped_of = primary_id
            job.state = primary.state
            self._followers.setdefault(primary_id, []).append(job.id)
            job.publish("recovered", coalesced_onto=primary_id)
            self._journal_state(job)
            return True
        job.deduped_of = None
        job.state = JobState.QUEUED
        job.not_before_s = None
        if job.dedup_key is not None:
            self._active_by_key[job.dedup_key] = job.id
        heapq.heappush(self._heap, (-job.priority, next(self._counter),
                                    job.id))
        job.publish("recovered", was=was, attempts_so_far=job.attempts)
        self._journal_state(job)
        return True

    def bump_counter(self, floor: int) -> None:
        """Ensure future ids/heap counters start at or above ``floor``."""
        current = next(self._counter)
        self._counter = itertools.count(max(current, int(floor)))

    def restore_counters(self, counters: dict) -> None:
        self.dedup_hits = int(counters.get("dedup_hits", 0))
        self.executed = int(counters.get("executed", 0))
        self.cancelled = int(counters.get("cancelled", 0))
        self.retried = int(counters.get("retried", 0))

    def counters(self) -> dict:
        return {
            "dedup_hits": self.dedup_hits,
            "executed": self.executed,
            "cancelled": self.cancelled,
            "retried": self.retried,
        }

    # -- cancellation --------------------------------------------------
    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job (a follower detaches; a running one is
        past the point of no return and keeps running)."""
        job = self.jobs[job_id]
        if job.terminal:
            return job
        if job.state == JobState.RUNNING:
            return job  # can't un-run a simulation; report the state
        if job.deduped_of is not None:
            followers = self._followers.get(job.deduped_of, [])
            if job_id in followers:
                followers.remove(job_id)
        else:
            self._release(job)
            # Followers of a cancelled primary are promoted: the first
            # still-queued one becomes the new primary.
            self._promote_followers(job)
        job.state = JobState.CANCELLED
        job.finished_s = time.time()
        job.publish("cancelled")
        self.cancelled += 1
        self._journal_state(job, via="cancel")
        return job

    # -- internals -----------------------------------------------------
    def _journal_state(self, job: Job, via: Optional[str] = None) -> None:
        if self.journal is not None:
            self.journal.record_state(job, via=via)

    def _follower_jobs(self, primary: Job) -> list[Job]:
        return [self.jobs[fid] for fid in self._followers.get(primary.id, [])]

    def _release(self, job: Job) -> None:
        if (job.dedup_key is not None
                and self._active_by_key.get(job.dedup_key) == job.id):
            del self._active_by_key[job.dedup_key]

    def _resolve_followers(self, primary: Job) -> None:
        for follower in self._follower_jobs(primary):
            follower.state = primary.state
            follower.result = primary.result
            follower.failure = primary.failure
            follower.cache_hit = primary.cache_hit
            follower.finished_s = primary.finished_s
            follower.publish(primary.state, shared_with=primary.id)
            self._journal_state(follower)
        self._followers.pop(primary.id, None)

    def _promote_followers(self, cancelled_primary: Job) -> None:
        followers = self._followers.pop(cancelled_primary.id, [])
        queued = [fid for fid in followers
                  if self.jobs[fid].state == JobState.QUEUED]
        if not queued:
            return
        new_primary = self.jobs[queued[0]]
        new_primary.deduped_of = None
        if new_primary.dedup_key is not None:
            self._active_by_key[new_primary.dedup_key] = new_primary.id
        heapq.heappush(self._heap, (-new_primary.priority,
                                    next(self._counter), new_primary.id))
        new_primary.publish("promoted", was_follower_of=cancelled_primary.id)
        self._journal_state(new_primary)
        rest = queued[1:]
        if rest:
            self._followers[new_primary.id] = rest
            for fid in rest:
                self.jobs[fid].deduped_of = new_primary.id
                self._journal_state(self.jobs[fid])

    # -- ops -----------------------------------------------------------
    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False

    def running(self) -> list[Job]:
        """Primaries currently executing (what a drain waits on)."""
        return [job for job in self.jobs.values()
                if job.state == JobState.RUNNING and job.deduped_of is None]

    def depth(self) -> int:
        """Jobs still waiting to run (excludes followers and cancels)."""
        return sum(1 for job in self.jobs.values()
                   if job.state == JobState.QUEUED and job.deduped_of is None)

    def stats(self) -> dict:
        by_state: dict[str, int] = {state: 0 for state in JobState.ALL}
        by_kind: dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
            by_kind[job.kind] = by_kind.get(job.kind, 0) + 1
        return {
            "depth": self.depth(),
            "paused": self.paused,
            "jobs": len(self.jobs),
            "by_state": by_state,
            "by_kind": by_kind,
            "dedup_hits": self.dedup_hits,
            "executed": self.executed,
            "cancelled": self.cancelled,
            "retried": self.retried,
        }


class CircuitBreaker:
    """Per-dedup-key fail-fast after K consecutive failures.

    States per key: *closed* (normal), *open* (``threshold`` consecutive
    failures — submissions fail immediately with a structured reason),
    *half-open* (cooldown expired — exactly one probe submission is let
    through; its success closes the breaker, its failure re-opens it
    for another cooldown).

    Breaker state is deliberately in-memory only: a restart starts
    every key closed, and the journal-recovered retries re-prove the
    failure pattern quickly if it persists.  ``clock`` is injectable
    for deterministic tests.
    """

    def __init__(self, threshold: int = 5, cooldown_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.threshold = max(1, int(threshold))
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        #: key -> {"fails": n, "opened_at": t|None, "probe": bool}
        self._keys: dict[str, dict] = {}

    def check(self, key: str) -> Optional[dict]:
        """None if the key may execute; a structured block reason if not.

        Calling this *admits* the half-open probe — only call it when
        the submission would actually queue.
        """
        entry = self._keys.get(key)
        if entry is None or entry["opened_at"] is None:
            return None
        elapsed = self._clock() - entry["opened_at"]
        if elapsed >= self.cooldown_s and not entry["probe"]:
            entry["probe"] = True  # one probe through; others stay blocked
            return None
        return {
            "consecutive_failures": entry["fails"],
            "cooldown_s": self.cooldown_s,
            "retry_in_s": round(max(0.0, self.cooldown_s - elapsed), 3),
            "probe_in_flight": entry["probe"],
        }

    def record_failure(self, key: str) -> None:
        entry = self._keys.setdefault(
            key, {"fails": 0, "opened_at": None, "probe": False})
        entry["fails"] += 1
        entry["probe"] = False
        if entry["fails"] >= self.threshold:
            entry["opened_at"] = self._clock()

    def record_success(self, key: str) -> None:
        self._keys.pop(key, None)

    def open_keys(self) -> list[str]:
        return [key for key, entry in self._keys.items()
                if entry["opened_at"] is not None]

    def stats(self) -> dict:
        return {
            "threshold": self.threshold,
            "cooldown_s": self.cooldown_s,
            "tracked_keys": len(self._keys),
            "open_keys": len(self.open_keys()),
        }
