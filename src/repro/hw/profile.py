"""Hardware profile: functional-unit and register characterization.

A :class:`HardwareProfile` maps *functional unit classes* (``FP_ADD``,
``INT_MUL``, ...) to their timing/power/area specs and defines register
characteristics.  `fu_class_for` assigns each IR instruction to an FU
class — the same mapping used by static elaboration (datapath
construction), the runtime engine (latency/energy), the Aladdin-style
baseline (trace scheduling), and the HLS reference model, so all models
price operations identically, exactly like the paper's shared hardware
profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.values import Instruction

# Functional unit class names.
FP_ADD = "fp_add"
FP_MUL = "fp_mul"
FP_DIV = "fp_div"
FP_CMP = "fp_cmp"
FP_SPECIAL = "fp_special"  # sqrt/exp/log/trig
INT_ADD = "int_add"
INT_MUL = "int_mul"
INT_DIV = "int_div"
BITWISE = "bitwise"
SHIFTER = "shifter"
MUX = "mux"
CONVERTER = "converter"  # int<->float conversion
FU_NONE = "none"  # free operations: wiring-only casts, control, memory

FU_CLASSES = [
    FP_ADD, FP_MUL, FP_DIV, FP_CMP, FP_SPECIAL,
    INT_ADD, INT_MUL, INT_DIV, BITWISE, SHIFTER, MUX, CONVERTER,
]

_FREE_CASTS = frozenset(["zext", "sext", "trunc", "bitcast", "inttoptr", "ptrtoint", "fpext", "fptrunc"])
_SPECIAL_INTRINSICS = frozenset(["sqrt", "exp", "log", "sin", "cos", "pow"])


def fu_class_for(inst: Instruction) -> str:
    """Functional-unit class an instruction executes on.

    Returns ``FU_NONE`` for operations with no datapath unit: control
    flow, memory (priced by the memory system), phis, and pure-wiring
    casts.
    """
    if isinstance(inst, BinaryOp):
        table = {
            "fadd": FP_ADD, "fsub": FP_ADD,
            "fmul": FP_MUL,
            "fdiv": FP_DIV, "frem": FP_DIV,
            "add": INT_ADD, "sub": INT_ADD,
            "mul": INT_MUL,
            "sdiv": INT_DIV, "udiv": INT_DIV, "srem": INT_DIV, "urem": INT_DIV,
            "and": BITWISE, "or": BITWISE, "xor": BITWISE,
            "shl": SHIFTER, "lshr": SHIFTER, "ashr": SHIFTER,
        }
        return table[inst.opcode]
    if isinstance(inst, ICmp):
        return INT_ADD  # comparisons share the adder/subtractor
    if isinstance(inst, FCmp):
        return FP_CMP
    if isinstance(inst, Select):
        return MUX
    if isinstance(inst, Cast):
        if inst.opcode in _FREE_CASTS:
            return FU_NONE
        return CONVERTER
    if isinstance(inst, GetElementPtr):
        return INT_ADD  # address generation
    if isinstance(inst, Call):
        if inst.callee in _SPECIAL_INTRINSICS:
            return FP_SPECIAL
        if inst.callee in ("fmin", "fmax", "fabs"):
            return FP_CMP
        return FU_NONE
    if isinstance(inst, (Load, Store, Alloca, Branch, Ret, Phi)):
        return FU_NONE
    return FU_NONE


@dataclass(frozen=True)
class FunctionalUnitSpec:
    """Characterization of one functional unit class.

    Energies are per operation in picojoules; leakage in milliwatts per
    instantiated unit; area in square micrometres.  ``latency`` is in
    accelerator cycles; pipelined units accept a new op every cycle.
    """

    name: str
    latency: int
    area_um2: float
    leakage_mw: float
    dynamic_energy_pj: float
    pipelined: bool = True

    def with_latency(self, latency: int) -> "FunctionalUnitSpec":
        return replace(self, latency=latency)


@dataclass(frozen=True)
class RegisterSpec:
    """Per-bit register characterization."""

    area_um2_per_bit: float = 5.24
    leakage_mw_per_bit: float = 6.2e-6
    read_energy_pj_per_bit: float = 0.0032
    write_energy_pj_per_bit: float = 0.0052


@dataclass
class HardwareProfile:
    """The device-independent hardware characterization.

    ``limits`` constrains how many units of a class may be instantiated
    (absent key = unlimited, i.e. the paper's default 1-to-1 mapping of
    instructions to dedicated units).
    """

    name: str
    units: dict[str, FunctionalUnitSpec]
    register: RegisterSpec = field(default_factory=RegisterSpec)
    cycle_time_ns: float = 10.0  # matches a 100 MHz Vivado HLS default

    def spec_for(self, fu_class: str) -> Optional[FunctionalUnitSpec]:
        if fu_class == FU_NONE:
            return None
        if fu_class not in self.units:
            raise KeyError(f"hardware profile '{self.name}' lacks FU class '{fu_class}'")
        return self.units[fu_class]

    def latency_of(self, inst: Instruction) -> int:
        spec = self.spec_for(fu_class_for(inst))
        return spec.latency if spec is not None else 0

    def with_unit(self, spec: FunctionalUnitSpec) -> "HardwareProfile":
        units = dict(self.units)
        units[spec.name] = spec
        return HardwareProfile(self.name, units, self.register, self.cycle_time_ns)
