"""JobQueue unit tests: priorities, dedup, cancellation, lifecycle."""

from repro.exec.failures import FailureRecord
from repro.serve.jobs import JobQueue, JobState


def make_failure(message="boom"):
    try:
        raise ValueError(message)
    except ValueError as exc:
        return FailureRecord.from_exception(exc)


def test_fifo_within_priority():
    queue = JobQueue()
    first = queue.submit("run", {"n": 1})
    second = queue.submit("run", {"n": 2})
    assert queue.claim() is first
    assert queue.claim() is second
    assert queue.claim() is None


def test_higher_priority_runs_first():
    queue = JobQueue()
    low = queue.submit("run", {"n": 1}, priority=0)
    high = queue.submit("run", {"n": 2}, priority=5)
    mid = queue.submit("run", {"n": 3}, priority=1)
    assert [queue.claim() for __ in range(3)] == [high, mid, low]


def test_claim_transitions_to_running():
    queue = JobQueue()
    job = queue.submit("run", {})
    assert job.state == JobState.QUEUED
    claimed = queue.claim()
    assert claimed.state == JobState.RUNNING
    assert claimed.started_s is not None
    queue.resolve(claimed, result={"answer": 42})
    assert claimed.state == JobState.DONE
    assert claimed.result == {"answer": 42}
    assert claimed.finished_s is not None
    assert queue.executed == 1


def test_dedup_coalesces_identical_requests():
    queue = JobQueue()
    primary = queue.submit("run", {"spec": 1}, dedup_key="k1")
    follower = queue.submit("run", {"spec": 1}, dedup_key="k1")
    assert follower.deduped_of == primary.id
    assert queue.dedup_hits == 1
    # Only the primary is ever handed to a worker.
    assert queue.claim() is primary
    assert follower.state == JobState.RUNNING  # mirrors the primary
    assert queue.claim() is None
    queue.resolve(primary, result={"cycles": 9})
    assert follower.state == JobState.DONE
    assert follower.result == {"cycles": 9}
    assert queue.executed == 1


def test_dedup_failure_fans_out_to_followers():
    queue = JobQueue()
    primary = queue.submit("run", {}, dedup_key="k")
    follower = queue.submit("run", {}, dedup_key="k")
    queue.claim()
    queue.resolve(primary, failure=make_failure())
    assert primary.state == JobState.FAILED
    assert follower.state == JobState.FAILED
    assert follower.failure["error_type"] == "ValueError"


def test_dedup_key_released_after_resolution():
    queue = JobQueue()
    first = queue.submit("run", {}, dedup_key="k")
    queue.claim()
    queue.resolve(first, result={})
    again = queue.submit("run", {}, dedup_key="k")
    assert again.deduped_of is None  # a finished job no longer absorbs


def test_distinct_keys_do_not_coalesce():
    queue = JobQueue()
    a = queue.submit("run", {}, dedup_key="ka")
    b = queue.submit("run", {}, dedup_key="kb")
    assert b.deduped_of is None
    assert [queue.claim(), queue.claim()] == [a, b]


def test_cancel_queued_job_never_runs():
    queue = JobQueue()
    job = queue.submit("run", {})
    cancelled = queue.cancel(job.id)
    assert cancelled.state == JobState.CANCELLED
    assert queue.claim() is None
    assert queue.executed == 0
    assert queue.cancelled == 1


def test_cancel_running_job_is_refused():
    queue = JobQueue()
    job = queue.submit("run", {})
    queue.claim()
    assert queue.cancel(job.id).state == JobState.RUNNING


def test_cancel_follower_leaves_primary_queued():
    queue = JobQueue()
    primary = queue.submit("run", {}, dedup_key="k")
    follower = queue.submit("run", {}, dedup_key="k")
    queue.cancel(follower.id)
    assert follower.state == JobState.CANCELLED
    assert queue.claim() is primary
    queue.resolve(primary, result={"ok": True})
    # The cancelled follower must not be resurrected by the fan-out.
    assert follower.state == JobState.CANCELLED
    assert follower.result is None


def test_cancel_primary_promotes_first_queued_follower():
    queue = JobQueue()
    primary = queue.submit("run", {"n": 1}, dedup_key="k")
    f1 = queue.submit("run", {"n": 1}, dedup_key="k")
    f2 = queue.submit("run", {"n": 1}, dedup_key="k")
    queue.cancel(primary.id)
    assert primary.state == JobState.CANCELLED
    assert f1.deduped_of is None  # promoted
    assert f2.deduped_of == f1.id  # re-attached to the new primary
    claimed = queue.claim()
    assert claimed is f1
    queue.resolve(claimed, result={"v": 1})
    assert f2.state == JobState.DONE
    assert f2.result == {"v": 1}


def test_pause_blocks_claims_but_not_submissions():
    queue = JobQueue()
    queue.pause()
    job = queue.submit("run", {})
    assert queue.claim() is None
    assert job.state == JobState.QUEUED
    queue.resume()
    assert queue.claim() is job


def test_finish_immediately_marks_cache_hit():
    queue = JobQueue()
    job = queue.submit("run", {}, dedup_key="k")
    queue.finish_immediately(job, {"cycles": 1}, cache_hit=True)
    assert job.state == JobState.DONE
    assert job.cache_hit
    assert job.result == {"cycles": 1}
    # The key is released: identical later requests are fresh jobs.
    assert queue.submit("run", {}, dedup_key="k").deduped_of is None
    # No simulation happened.
    assert queue.executed == 0


def test_event_log_records_lifecycle():
    queue = JobQueue()
    job = queue.submit("run", {})
    queue.claim()
    job.publish("point", done=1, total=2)
    queue.resolve(job, result={})
    names = [event["event"] for event in job.events]
    assert names == ["queued", "running", "point", "done"]
    assert [event["seq"] for event in job.events] == [0, 1, 2, 3]


def test_stats_counts():
    queue = JobQueue()
    a = queue.submit("run", {}, dedup_key="k")
    queue.submit("run", {}, dedup_key="k")
    queue.submit("analyze", {})
    queue.claim()
    queue.resolve(a, result={})
    stats = queue.stats()
    assert stats["jobs"] == 3
    assert stats["by_kind"] == {"run": 2, "analyze": 1}
    assert stats["dedup_hits"] == 1
    assert stats["executed"] == 1
    assert stats["depth"] == 1  # the analyze job still waits
