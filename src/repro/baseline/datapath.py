"""Datapath reverse-engineering from a dynamic trace (Aladdin's core).

Builds the dynamic dependence graph of the trace (register deps through
SSA names, memory deps through addresses), ASAP-schedules it against a
memory timing model, and derives the datapath: one functional unit per
*concurrently scheduled* operation, per class.  Because concurrency is
a property of the schedule — which depends on the input data (Table I)
and on memory latencies (Table II) — the derived datapath moves when
either changes.  That is the pathology gem5-SALAM's dual static/dynamic
CDFG eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baseline.gem5_aladdin import AladdinMemoryModel, IdealMemory
from repro.baseline.tracer import TraceEntry
from repro.core.config import DeviceConfig
from repro.hw.profile import FU_NONE, HardwareProfile

# Opcode -> FU class for trace entries (string-level mirror of
# repro.hw.profile.fu_class_for, which needs instruction objects).
_OPCODE_CLASS = {
    "fadd": "fp_add", "fsub": "fp_add",
    "fmul": "fp_mul",
    "fdiv": "fp_div", "frem": "fp_div",
    "fcmp": "fp_cmp",
    "add": "int_add", "sub": "int_add", "icmp": "int_add",
    "mul": "int_mul",
    "sdiv": "int_div", "udiv": "int_div", "srem": "int_div", "urem": "int_div",
    "and": "bitwise", "or": "bitwise", "xor": "bitwise",
    "shl": "shifter", "lshr": "shifter", "ashr": "shifter",
    "select": "mux",
    "sitofp": "converter", "uitofp": "converter",
    "fptosi": "converter", "fptoui": "converter",
    "call": "fp_special",
}

# Operations Aladdin's trace optimization removes / treats as free.
_FREE_OPCODES = frozenset(
    ["phi", "br", "ret", "getelementptr", "zext", "sext", "trunc",
     "bitcast", "fpext", "fptrunc", "inttoptr", "ptrtoint", "alloca"]
)


def fu_class_of_opcode(opcode: str) -> str:
    if opcode in _FREE_OPCODES:
        return FU_NONE
    return _OPCODE_CLASS.get(opcode, FU_NONE)


@dataclass
class TraceDatapath:
    """The datapath Aladdin derives from one trace + memory model.

    ``fu_counts`` is schedule-derived (peak per-cycle concurrency, the
    quantity that moves with memory configuration — Table II);
    ``observed_units`` counts the *distinct static operations* that
    appeared in the trace (the datapath's functional-unit inventory,
    the quantity that moves with input data — Table I).
    """

    fu_counts: dict[str, int]
    observed_units: dict[str, int]
    cycles: int
    dynamic_ops: int
    schedule_issue: dict[int, int] = field(default_factory=dict, repr=False)
    memory_model: Optional[AladdinMemoryModel] = None

    def fu(self, fu_class: str) -> int:
        return self.fu_counts.get(fu_class, 0)

    def units(self, fu_class: str) -> int:
        return self.observed_units.get(fu_class, 0)


def build_datapath(
    entries: list[TraceEntry],
    profile: HardwareProfile,
    memory_model: Optional[AladdinMemoryModel] = None,
    config: Optional[DeviceConfig] = None,
) -> TraceDatapath:
    """ASAP-schedule the trace and derive FU allocation."""
    memory_model = memory_model or IdealMemory()
    config = config or DeviceConfig()

    last_writer: dict[str, int] = {}     # SSA name -> entry index
    finish: list[int] = [0] * len(entries)
    issue: list[int] = [0] * len(entries)
    last_store_at: dict[int, int] = {}   # address -> entry index of last store
    last_access_at: dict[int, int] = {}  # address -> entry index of last access

    # Issue-concurrency per (class, cycle).
    concurrency: dict[tuple[str, int], int] = {}
    peak: dict[str, int] = {}
    observed: dict[str, set] = {}
    dynamic_ops = 0

    for index, entry in enumerate(entries):
        ready = 0
        for operand in entry.operands:
            producer = last_writer.get(operand)
            if producer is not None:
                ready = max(ready, finish[producer])

        if entry.opcode == "load":
            assert entry.address is not None
            producer = last_store_at.get(entry.address)
            if producer is not None:
                ready = max(ready, finish[producer])
            issue[index] = ready
            finish[index] = memory_model.access(
                entry.address, entry.size, False, ready
            )
            last_access_at[entry.address] = index
        elif entry.opcode == "store":
            assert entry.address is not None
            for table in (last_store_at, last_access_at):
                producer = table.get(entry.address)
                if producer is not None:
                    ready = max(ready, finish[producer])
            issue[index] = ready
            finish[index] = memory_model.access(
                entry.address, entry.size, True, ready
            )
            last_store_at[entry.address] = index
            last_access_at[entry.address] = index
        else:
            fu_class = fu_class_of_opcode(entry.opcode)
            if fu_class == FU_NONE:
                issue[index] = ready
                finish[index] = ready  # free op (wiring / removed by opt)
            else:
                spec = profile.spec_for(fu_class)
                issue[index] = ready
                finish[index] = ready + spec.latency
                dynamic_ops += 1
                key = (fu_class, ready)
                used = concurrency.get(key, 0) + 1
                concurrency[key] = used
                if used > peak.get(fu_class, 0):
                    peak[fu_class] = used
                if entry.name:
                    observed.setdefault(fu_class, set()).add(entry.name)

        if entry.name:
            last_writer[entry.name] = index

    total_cycles = max(finish) if finish else 0
    return TraceDatapath(
        fu_counts=dict(peak),
        observed_units={k: len(v) for k, v in observed.items()},
        cycles=total_cycles,
        dynamic_ops=dynamic_ops,
        memory_model=memory_model,
    )
