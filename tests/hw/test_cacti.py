"""Analytical SRAM model: scaling-law properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw.cacti import SRAMConfig, cacti_model

sizes = st.sampled_from([256, 512, 1024, 4096, 16384, 65536, 262144])


def test_validation():
    with pytest.raises(ValueError):
        SRAMConfig(size_bytes=0)
    with pytest.raises(ValueError):
        SRAMConfig(size_bytes=1024, read_ports=0)
    with pytest.raises(ValueError):
        SRAMConfig(size_bytes=1024, banks=0)


@given(sizes)
def test_all_metrics_positive(size):
    m = cacti_model(SRAMConfig(size_bytes=size))
    assert m.area_um2 > 0
    assert m.leakage_mw > 0
    assert m.read_energy_pj > 0
    assert m.write_energy_pj > m.read_energy_pj  # writes cost more
    assert m.access_latency_cycles >= 1


@given(sizes)
def test_area_and_leakage_grow_with_capacity(size):
    small = cacti_model(SRAMConfig(size_bytes=size))
    large = cacti_model(SRAMConfig(size_bytes=size * 4))
    assert large.area_um2 > small.area_um2
    assert large.leakage_mw > small.leakage_mw
    assert large.read_energy_pj > small.read_energy_pj


@given(sizes)
def test_extra_ports_cost_area_and_energy(size):
    single = cacti_model(SRAMConfig(size_bytes=size, read_ports=1, write_ports=1))
    multi = cacti_model(SRAMConfig(size_bytes=size, read_ports=4, write_ports=2))
    assert multi.area_um2 > single.area_um2
    assert multi.read_energy_pj > single.read_energy_pj


@given(sizes)
def test_banking_reduces_access_energy(size):
    flat = cacti_model(SRAMConfig(size_bytes=size, banks=1))
    banked = cacti_model(SRAMConfig(size_bytes=size, banks=8))
    assert banked.read_energy_pj < flat.read_energy_pj
    assert banked.area_um2 > flat.area_um2  # overhead


def test_latency_grows_with_bank_size():
    small = cacti_model(SRAMConfig(size_bytes=4096))
    huge = cacti_model(SRAMConfig(size_bytes=1 << 20))
    assert huge.access_latency_cycles > small.access_latency_cycles


def test_representative_4kb_spm_in_cacti_range():
    m = cacti_model(SRAMConfig(size_bytes=4096, word_bytes=8))
    # CACTI 6.5 at 40nm reports roughly 1-10 pJ/access and 0.01-0.1 mm^2
    # for this point; our analytical stand-in must land in that decade.
    assert 0.5 < m.read_energy_pj < 20
    assert 10_000 < m.area_um2 < 200_000
