"""Diagnostics engine: `Diagnostic`, `AnalysisReport`, and renderers.

Every static analysis in `repro.analysis` reports findings through this
module so the CLI, CI gate, and tests all consume one shape.  A
diagnostic is a (code, severity, location, message, hint) record; a
report is an ordered collection of diagnostics plus per-rule wall-clock
timings and free-form metadata, rendered as text (for humans) or JSON
(for CI artifacts).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterable, Iterator, Optional


class Severity(IntEnum):
    """Diagnostic severity; `ERROR` gates CI (nonzero exit)."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity '{name}'; valid: note, warning, error"
            ) from None


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points: function / block / value reference.

    The IR has no source lines, so locations name IR entities; any part
    may be empty (e.g. system lints locate by component name only).
    """

    function: str = ""
    block: str = ""
    ref: str = ""

    def __str__(self) -> str:
        parts = []
        if self.function:
            parts.append(f"@{self.function}")
        if self.block:
            parts.append(self.block)
        where = ".".join(parts)
        if self.ref:
            where = f"{where}:{self.ref}" if where else self.ref
        return where or "<module>"

    def to_dict(self) -> dict:
        return {"function": self.function, "block": self.block, "ref": self.ref}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: rule code, severity, location, message, and a hint."""

    code: str
    severity: Severity
    location: Location
    message: str
    hint: str = ""

    def render(self) -> str:
        line = f"{str(self.severity):>7s} {self.code} {self.location}: {self.message}"
        if self.hint:
            line += f"\n        hint: {self.hint}"
        return line

    def to_dict(self) -> dict:
        data = {
            "code": self.code,
            "severity": str(self.severity),
            "location": self.location.to_dict(),
            "message": self.message,
        }
        if self.hint:
            data["hint"] = self.hint
        return data


class AnalysisReport:
    """An ordered collection of diagnostics plus timings and metadata.

    ``timings`` maps rule/analysis names to accumulated seconds (the
    per-rule timings the build trace channel mirrors); ``meta`` carries
    analysis-specific payloads (e.g. the dependence summary).
    """

    def __init__(self, subject: str = "") -> None:
        self.subject = subject
        self.diagnostics: list[Diagnostic] = []
        self.timings: dict[str, float] = {}
        self.meta: dict = {}

    # -- building ----------------------------------------------------------
    def add(
        self,
        code: str,
        severity: Severity,
        location: Location,
        message: str,
        hint: str = "",
    ) -> Diagnostic:
        diag = Diagnostic(code, severity, location, message, hint)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "AnalysisReport") -> "AnalysisReport":
        """Merge another report's findings, timings, and metadata."""
        self.diagnostics.extend(other.diagnostics)
        for name, seconds in other.timings.items():
            self.timings[name] = self.timings.get(name, 0.0) + seconds
        self.meta.update(other.meta)
        return self

    def record_timing(self, name: str, seconds: float) -> None:
        self.timings[name] = self.timings.get(name, 0.0) + seconds

    def timed(self, name: str) -> "_TimedSection":
        """``with report.timed("rule"):`` accumulates wall-clock seconds."""
        return _TimedSection(self, name)

    # -- queries -----------------------------------------------------------
    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def notes(self) -> list[Diagnostic]:
        return self.by_severity(Severity.NOTE)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def counts(self) -> dict[str, int]:
        counts = {"error": 0, "warning": 0, "note": 0}
        for diag in self.diagnostics:
            counts[str(diag.severity)] += 1
        return counts

    def exit_code(self) -> int:
        """The CI gate: 1 on any error-severity diagnostic, else 0."""
        return 1 if self.has_errors else 0

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -- rendering ---------------------------------------------------------
    def summary_line(self) -> str:
        counts = self.counts()
        body = ", ".join(
            f"{n} {name}{'s' if n != 1 else ''}"
            for name, n in (("error", counts["error"]),
                            ("warning", counts["warning"]),
                            ("note", counts["note"]))
            if n
        )
        subject = f"{self.subject}: " if self.subject else ""
        return f"{subject}{body or 'clean'}"

    def render_text(self, show_timings: bool = False) -> str:
        lines = []
        if self.subject:
            lines.append(f"== {self.subject} ==")
        for diag in sorted(
            self.diagnostics, key=lambda d: (-int(d.severity), d.code)
        ):
            lines.append(diag.render())
        lines.append(self.summary_line())
        if show_timings and self.timings:
            lines.append("timings:")
            for name, seconds in sorted(self.timings.items()):
                lines.append(f"  {name:24s} {seconds * 1e3:8.2f} ms")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "counts": self.counts(),
            "timings": {k: round(v, 6) for k, v in sorted(self.timings.items())},
            "meta": self.meta,
        }

    def render_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def merged(cls, reports: Iterable["AnalysisReport"],
               subject: str = "") -> "AnalysisReport":
        total = cls(subject)
        for report in reports:
            total.extend(report)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        counts = self.counts()
        return (f"<AnalysisReport {self.subject or '-'} "
                f"E{counts['error']}/W{counts['warning']}/N{counts['note']}>")


class _TimedSection:
    def __init__(self, report: AnalysisReport, name: str) -> None:
        self.report = report
        self.name = name
        self._start = 0.0

    def __enter__(self) -> "_TimedSection":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.report.record_timing(self.name, time.perf_counter() - self._start)
