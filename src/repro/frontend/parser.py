"""Recursive-descent parser for the mini-C dialect."""

from __future__ import annotations

from typing import Optional

from repro.frontend import c_ast as ast
from repro.frontend.lexer import Lexer, Token

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_BASE_TYPES = frozenset(["void", "char", "short", "int", "long", "float", "double", "unsigned"])
_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="])


class CParseError(ValueError):
    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"line {token.line}: {message} (near {token.text!r})")


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.pending_unroll: Optional[int] = None

    # -- token helpers ---------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.peek()
        self.pos += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            expected = text or kind
            raise CParseError(f"expected {expected!r}", self.peek())
        return token

    def _consume_pragmas(self) -> None:
        while self.peek().kind == "pragma":
            token = self.next()
            parts = token.text.split()
            if parts and parts[0] == "unroll":
                if len(parts) > 1:
                    try:
                        self.pending_unroll = int(parts[1].strip("()"))
                    except ValueError:
                        raise CParseError("bad unroll factor", token)
                else:
                    self.pending_unroll = 0  # full unroll
            # Unknown pragmas are ignored, like a real compiler.

    # -- types ----------------------------------------------------------------
    def looks_like_type(self) -> bool:
        token = self.peek()
        return token.kind == "keyword" and token.text in (_BASE_TYPES | {"const"})

    def parse_type_prefix(self) -> ast.CType:
        while self.accept("keyword", "const"):
            pass
        unsigned = bool(self.accept("keyword", "unsigned"))
        token = self.peek()
        if token.kind != "keyword" or token.text not in _BASE_TYPES:
            if unsigned:
                return ast.CType("int", unsigned=True)
            raise CParseError("expected type name", token)
        base = self.next().text
        if base == "long":
            self.accept("keyword", "long")  # accept 'long long'
            self.accept("keyword", "int")
        if base == "short":
            self.accept("keyword", "int")
        while self.accept("keyword", "const"):
            pass
        ctype = ast.CType(base, unsigned=unsigned)
        while self.accept("op", "*"):
            ctype.pointers += 1
            while self.accept("keyword", "const"):
                pass
        return ctype

    def parse_array_suffix(self, ctype: ast.CType) -> ast.CType:
        while self.accept("punct", "["):
            if self.accept("punct", "]"):
                ctype.pointers += 1  # `T x[]` decays to pointer
                continue
            dim_token = self.expect("int")
            ctype.array_dims.append(int(dim_token.value))
            self.expect("punct", "]")
        return ctype

    # -- top level ---------------------------------------------------------------
    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self.peek().kind != "eof":
            self._consume_pragmas()
            if self.peek().kind == "eof":
                break
            unit.functions.append(self.parse_function())
        return unit

    def parse_function(self) -> ast.FunctionDef:
        line = self.peek().line
        return_type = self.parse_type_prefix()
        name = self.expect("ident").text
        self.expect("punct", "(")
        params: list[ast.Param] = []
        if not self.accept("punct", ")"):
            while True:
                if self.accept("keyword", "void") and self.peek().text == ")":
                    break
                ptype = self.parse_type_prefix()
                pname = self.expect("ident").text
                ptype = self.parse_array_suffix(ptype)
                if ptype.array_dims:
                    # Outermost array dimension of a parameter decays.
                    ptype.array_dims = ptype.array_dims[1:]
                    ptype.pointers += 1
                params.append(ast.Param(ptype, pname))
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        body = self.parse_compound()
        return ast.FunctionDef(name, return_type, params, body, line=line)

    # -- statements --------------------------------------------------------------
    def parse_compound(self) -> ast.Compound:
        line = self.expect("punct", "{").line
        body: list[ast.Stmt] = []
        while not self.accept("punct", "}"):
            body.append(self.parse_statement())
        return ast.Compound(line=line, body=body)

    def parse_statement(self) -> ast.Stmt:
        self._consume_pragmas()
        token = self.peek()
        if token.kind == "punct" and token.text == "{":
            return self.parse_compound()
        if token.kind == "keyword":
            if token.text == "if":
                return self.parse_if()
            if token.text == "for":
                return self.parse_for()
            if token.text == "while":
                return self.parse_while()
            if token.text == "do":
                return self.parse_do()
            if token.text == "return":
                line = self.next().line
                value = None
                if not self.accept("punct", ";"):
                    value = self.parse_expression()
                    self.expect("punct", ";")
                return ast.Return(line=line, value=value)
            if token.text == "break":
                line = self.next().line
                self.expect("punct", ";")
                return ast.Break(line=line)
            if token.text == "continue":
                line = self.next().line
                self.expect("punct", ";")
                return ast.Continue(line=line)
            if self.looks_like_type():
                return self.parse_declaration()
        if token.kind == "punct" and token.text == ";":
            self.next()
            return ast.ExprStmt(line=token.line, expr=None)
        expr = self.parse_expression()
        self.expect("punct", ";")
        return ast.ExprStmt(line=token.line, expr=expr)

    def parse_declaration(self) -> ast.Stmt:
        line = self.peek().line
        base = self.parse_type_prefix()
        decls: list[ast.VarDecl] = []
        while True:
            ctype = ast.CType(
                base.base, unsigned=base.unsigned, pointers=base.pointers,
                array_dims=[],
            )
            name = self.expect("ident").text
            ctype = self.parse_array_suffix(ctype)
            init = None
            if self.accept("op", "="):
                init = self.parse_assignment()
            decls.append(ast.VarDecl(line=line, type=ctype, name=name, init=init))
            if not self.accept("punct", ","):
                break
        self.expect("punct", ";")
        if len(decls) == 1:
            return decls[0]
        return ast.Compound(line=line, body=list(decls))

    def parse_if(self) -> ast.If:
        line = self.expect("keyword", "if").line
        self.expect("punct", "(")
        cond = self.parse_expression()
        self.expect("punct", ")")
        then = self.parse_statement()
        otherwise = None
        if self.accept("keyword", "else"):
            otherwise = self.parse_statement()
        return ast.If(line=line, cond=cond, then=then, otherwise=otherwise)

    def parse_for(self) -> ast.For:
        unroll = self.pending_unroll
        self.pending_unroll = None
        line = self.expect("keyword", "for").line
        self.expect("punct", "(")
        init: Optional[ast.Stmt] = None
        if not self.accept("punct", ";"):
            if self.looks_like_type():
                init = self.parse_declaration()
            else:
                init = ast.ExprStmt(line=line, expr=self.parse_expression())
                self.expect("punct", ";")
        cond = None
        if not self.accept("punct", ";"):
            cond = self.parse_expression()
            self.expect("punct", ";")
        step = None
        if self.peek().text != ")":
            step = self.parse_expression()
        self.expect("punct", ")")
        body = self.parse_statement()
        return ast.For(line=line, init=init, cond=cond, step=step, body=body, unroll=unroll)

    def parse_while(self) -> ast.While:
        unroll = self.pending_unroll
        self.pending_unroll = None
        line = self.expect("keyword", "while").line
        self.expect("punct", "(")
        cond = self.parse_expression()
        self.expect("punct", ")")
        body = self.parse_statement()
        return ast.While(line=line, cond=cond, body=body, unroll=unroll)

    def parse_do(self) -> ast.DoWhile:
        unroll = self.pending_unroll
        self.pending_unroll = None
        line = self.expect("keyword", "do").line
        body = self.parse_statement()
        self.expect("keyword", "while")
        self.expect("punct", "(")
        cond = self.parse_expression()
        self.expect("punct", ")")
        self.expect("punct", ";")
        return ast.DoWhile(line=line, body=body, cond=cond, unroll=unroll)

    # -- expressions -----------------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        lhs = self.parse_conditional()
        token = self.peek()
        if token.kind == "op" and token.text in _ASSIGN_OPS:
            self.next()
            value = self.parse_assignment()
            return ast.Assign(line=token.line, op=token.text, target=lhs, value=value)
        return lhs

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.accept("op", "?"):
            if_true = self.parse_expression()
            self.expect("op", ":")
            if_false = self.parse_conditional()
            return ast.Conditional(line=cond.line, cond=cond, if_true=if_true, if_false=if_false)
        return cond

    def parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind != "op" or token.text not in _PRECEDENCE:
                return lhs
            prec = _PRECEDENCE[token.text]
            if prec < min_prec:
                return lhs
            self.next()
            rhs = self.parse_binary(prec + 1)
            lhs = ast.BinOp(line=token.line, op=token.text, lhs=lhs, rhs=rhs)

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "op" and token.text in ("-", "+", "!", "~", "*", "&"):
            self.next()
            operand = self.parse_unary()
            if token.text == "+":
                return operand
            return ast.UnOp(line=token.line, op=token.text, operand=operand)
        if token.kind == "op" and token.text in ("++", "--"):
            self.next()
            target = self.parse_unary()
            return ast.IncDec(line=token.line, op=token.text, target=target, prefix=True)
        # Cast: '(' type ')' unary
        if token.kind == "punct" and token.text == "(":
            save = self.pos
            self.next()
            if self.looks_like_type():
                ctype = self.parse_type_prefix()
                if self.accept("punct", ")"):
                    operand = self.parse_unary()
                    return ast.CastExpr(line=token.line, to_type=ctype, operand=operand)
            self.pos = save
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if token.kind == "punct" and token.text == "[":
                self.next()
                index = self.parse_expression()
                self.expect("punct", "]")
                expr = ast.IndexExpr(line=token.line, base=expr, index=index)
            elif token.kind == "op" and token.text in ("++", "--"):
                self.next()
                expr = ast.IncDec(line=token.line, op=token.text, target=expr, prefix=False)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.next()
        if token.kind == "int":
            return ast.IntLit(line=token.line, value=int(token.value))
        if token.kind == "float":
            return ast.FloatLit(
                line=token.line, value=float(token.value),
                is_single=token.text.lower().endswith("f"),
            )
        if token.kind == "ident":
            if self.accept("punct", "("):
                args = []
                if not self.accept("punct", ")"):
                    args.append(self.parse_assignment())
                    while self.accept("punct", ","):
                        args.append(self.parse_assignment())
                    self.expect("punct", ")")
                return ast.CallExpr(line=token.line, callee=token.text, args=args)
            return ast.Ident(line=token.line, name=token.text)
        if token.kind == "punct" and token.text == "(":
            expr = self.parse_expression()
            self.expect("punct", ")")
            return expr
        raise CParseError("expected expression", token)


def parse_c(source: str) -> ast.TranslationUnit:
    """Parse mini-C source text into an AST."""
    return _Parser(Lexer(source).tokens).parse_translation_unit()
