"""The trace hub: a bounded, channelized event sink for the simulator.

The paper's dynamic runtime engine "logs which instructions are
scheduled or in-flight for each cycle" (Sec. III-C2).  `TraceHub`
generalizes that log to the whole platform: every instrumented
`SimObject` emits :class:`TraceEvent` records onto a named channel
(``compute``, ``mem``, ``dma``, ``irq``, ``host``, ``sched``,
``faults``), and the hub stores them in one bounded ring buffer with
per-channel emit/drop accounting.

Design constraints, in order:

* **Zero overhead when detached.**  Instrumented objects keep a
  ``_thub`` attribute that is ``None`` until a hub is attached; every
  hot-path emit site guards on that single attribute, so an untraced
  simulation pays one pointer compare per site and produces bit- and
  cycle-identical results.
* **Bounded memory.**  The ring holds ``capacity`` events; older events
  are evicted (and counted as dropped, per channel) rather than growing
  without bound.  Tracing a long run degrades to "the most recent
  window", never to an OOM.
* **Filterable at the source.**  A hub built with a channel subset
  discards other channels before they ever reach the ring, so tracing
  ``compute`` only does not pay for per-packet memory events.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Union

#: The first-class channels: one per platform layer, plus ``faults``
#: for `repro.faults` injections (so injected events line up with the
#: compute/memory activity they perturb in a Chrome trace) and
#: ``build`` for per-stage compile timings from `repro.build`.
CHANNELS = ("compute", "mem", "dma", "irq", "host", "sched", "faults",
            "build")

#: Default ring capacity (events).  Big enough for every workload in
#: the repo to trace un-dropped; small enough to stay far from OOM.
DEFAULT_CAPACITY = 1 << 18


class TraceError(ValueError):
    """Raised for invalid trace configuration (bad channel names, ...)."""


class TraceEvent:
    """One timestamped occurrence on a channel.

    ``tick`` is the event's start in simulation ticks (picoseconds);
    ``dur`` is its extent in ticks (0 for instantaneous events);
    ``source`` is the emitting SimObject's name; ``kind`` is a short
    event label (an opcode, ``read``, ``irq_raise``, ...); ``args`` is
    an optional dict of JSON-safe detail.
    """

    __slots__ = ("tick", "channel", "source", "kind", "dur", "args")

    def __init__(self, tick: int, channel: str, source: str, kind: str,
                 dur: int = 0, args: Optional[dict] = None) -> None:
        self.tick = tick
        self.channel = channel
        self.source = source
        self.kind = kind
        self.dur = dur
        self.args = args

    def to_dict(self) -> dict:
        data = {"tick": self.tick, "channel": self.channel,
                "source": self.source, "kind": self.kind, "dur": self.dur}
        if self.args:
            data["args"] = dict(self.args)
        return data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        span = f"+{self.dur}" if self.dur else ""
        return f"<TraceEvent {self.channel} {self.source} {self.kind} @{self.tick}{span}>"


def parse_channels(spec: Union[str, Iterable[str], None]) -> tuple[str, ...]:
    """Normalize a channel spec to a validated tuple.

    Accepts ``None`` / ``"all"`` (every channel), a comma-separated
    string (the CLI form), or an iterable of names.
    """
    if spec is None:
        return CHANNELS
    if isinstance(spec, str):
        if spec.strip() in ("", "all"):
            return CHANNELS
        names = [part.strip() for part in spec.split(",") if part.strip()]
    else:
        names = list(spec)
    unknown = [name for name in names if name not in CHANNELS]
    if unknown:
        raise TraceError(
            f"unknown trace channel(s) {unknown}; valid: {', '.join(CHANNELS)}"
        )
    # Preserve canonical order, drop duplicates.
    return tuple(ch for ch in CHANNELS if ch in names)


class TraceHub:
    """Channelized event sink with bounded storage and drop accounting."""

    def __init__(
        self,
        channels: Union[str, Iterable[str], None] = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if capacity <= 0:
            raise TraceError(f"trace capacity must be positive, got {capacity}")
        self.channels = parse_channels(channels)
        self.capacity = capacity
        self._active = frozenset(self.channels)
        self._ring: deque[TraceEvent] = deque()
        self.emitted: dict[str, int] = {ch: 0 for ch in self.channels}
        self.dropped: dict[str, int] = {ch: 0 for ch in self.channels}
        self._listeners: list[Callable[[TraceEvent], None]] = []

    # -- recording ----------------------------------------------------------
    def enabled(self, channel: str) -> bool:
        return channel in self._active

    def emit(self, channel: str, source: str, kind: str, tick: int,
             dur: int = 0, args: Optional[dict] = None) -> None:
        """Record one event.  Inactive channels are discarded up front."""
        if channel not in self._active:
            return
        event = TraceEvent(tick, channel, source, kind, dur, args)
        ring = self._ring
        if len(ring) >= self.capacity:
            evicted = ring.popleft()
            self.dropped[evicted.channel] += 1
        ring.append(event)
        self.emitted[channel] += 1
        for listener in self._listeners:
            listener(event)

    def subscribe(self, listener: Callable[[TraceEvent], None],
                  channels: Union[str, Iterable[str], None] = None) -> None:
        """Stream events to ``listener`` as they are emitted.

        ``channels`` restricts delivery to a subset (default: everything
        the hub records).  Listeners see events before ring eviction, so
        a subscriber observes the full stream even past capacity.
        """
        wanted = frozenset(parse_channels(channels))
        if wanted == self._active or wanted >= self._active:
            self._listeners.append(listener)
        else:
            self._listeners.append(
                lambda event, fn=listener, want=wanted:
                    fn(event) if event.channel in want else None
            )

    # -- access -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    def events(self, channel: Optional[str] = None) -> list[TraceEvent]:
        """Buffered events in emission order, optionally one channel's."""
        if channel is None:
            return list(self._ring)
        return [event for event in self._ring if event.channel == channel]

    def sources(self) -> list[str]:
        """Distinct emitting SimObject names, in first-seen order."""
        seen: dict[str, None] = {}
        for event in self._ring:
            seen.setdefault(event.source, None)
        return list(seen)

    @property
    def total_emitted(self) -> int:
        return sum(self.emitted.values())

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped.values())

    def clear(self) -> None:
        """Drop buffered events and zero the counters (keep configuration)."""
        self._ring.clear()
        for counts in (self.emitted, self.dropped):
            for channel in counts:
                counts[channel] = 0

    def summary(self) -> dict:
        """JSON-safe digest: per-channel counts, drops, and the time span."""
        ticks = [event.tick for event in self._ring]
        return {
            "channels": list(self.channels),
            "capacity": self.capacity,
            "emitted": dict(self.emitted),
            "dropped": dict(self.dropped),
            "total_emitted": self.total_emitted,
            "total_dropped": self.total_dropped,
            "buffered": len(self._ring),
            "first_tick": min(ticks) if ticks else None,
            "last_tick": max(ticks) if ticks else None,
        }

    def summary_json(self, indent: Optional[int] = None) -> str:
        """The summary through the shared stats serialization path."""
        from repro.sim.stats import stats_to_json

        return stats_to_json(self.summary(), indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TraceHub {len(self._ring)}/{self.capacity} events, "
                f"channels={','.join(self.channels)}>")


@dataclass(frozen=True)
class TraceConfig:
    """Picklable description of a tracing request.

    This is what crosses API boundaries (``SimContext(trace=...)``,
    ``ParallelSweep(trace=...)``, the CLI): channel subset, ring
    capacity, and an optional output path + format for exporters.
    Deliberately *not* part of any run-cache key — tracing is
    observability, it never changes simulated behaviour.
    """

    channels: tuple[str, ...] = CHANNELS
    capacity: int = DEFAULT_CAPACITY
    out: Optional[str] = None
    format: str = "chrome"  # 'chrome' | 'text'

    def __post_init__(self) -> None:
        object.__setattr__(self, "channels", parse_channels(self.channels))
        if self.capacity <= 0:
            raise TraceError(f"trace capacity must be positive, got {self.capacity}")
        if self.format not in ("chrome", "text"):
            raise TraceError(f"unknown trace format '{self.format}'")

    @classmethod
    def coerce(cls, value: Union["TraceConfig", str, Sequence[str], bool, None]
               ) -> Optional["TraceConfig"]:
        """Normalize the shorthand forms accepted by API entry points.

        ``None``/``False`` -> no tracing; ``True`` -> all channels;
        a string or iterable -> those channels; a config passes through.
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, TraceConfig):
            return value
        return cls(channels=parse_channels(value))

    def make_hub(self) -> TraceHub:
        return TraceHub(channels=self.channels, capacity=self.capacity)
