"""Property: randomly built IR survives print -> parse -> print intact."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.builder import IRBuilder
from repro.ir.module import Function, Module
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.types import DOUBLE, I1, I32, I64, ptr_to
from repro.ir.verifier import verify_module

# Each step appends one instruction; operands come from prior values.
_INT_OPS = ["add", "sub", "mul", "and", "or", "xor", "shl"]
_FP_OPS = ["fadd", "fsub", "fmul", "fdiv"]

step = st.sampled_from(
    ["int_op", "fp_op", "icmp", "fcmp", "select_i", "cast_up", "cast_down",
     "tofp", "toint", "gep_load", "store"]
)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(step, st.integers(0, 7), st.integers(0, 7),
                          st.integers(0, 6)), min_size=1, max_size=25),
       st.randoms(use_true_random=False))
def test_random_module_roundtrips(steps, rnd):
    module = Module("fuzz")
    func = Function("f", I32, [(I32, "a"), (DOUBLE, "x"), (ptr_to(I32), "p")])
    module.add_function(func)
    block = func.add_block("entry")
    builder = IRBuilder(block)

    ints = [func.args[0], builder.const(I32, 7)]
    fps = [func.args[1], builder.const(DOUBLE, 1.5)]
    bools = []

    for kind, i, j, k in steps:
        a_int, b_int = ints[i % len(ints)], ints[j % len(ints)]
        a_fp, b_fp = fps[i % len(fps)], fps[j % len(fps)]
        if kind == "int_op":
            ints.append(builder.binop(_INT_OPS[k % len(_INT_OPS)], a_int, b_int))
        elif kind == "fp_op":
            fps.append(builder.binop(_FP_OPS[k % len(_FP_OPS)], a_fp, b_fp))
        elif kind == "icmp":
            bools.append(builder.icmp("slt", a_int, b_int))
        elif kind == "fcmp":
            bools.append(builder.fcmp("olt", a_fp, b_fp))
        elif kind == "select_i" and bools:
            ints.append(builder.select(bools[i % len(bools)], a_int, b_int))
        elif kind == "cast_up":
            ints.append(builder.trunc(builder.sext(a_int, I64), I32))
        elif kind == "cast_down":
            ints.append(builder.zext(builder.trunc(a_int, I1), I32))
        elif kind == "tofp":
            fps.append(builder.sitofp(a_int, DOUBLE))
        elif kind == "toint":
            ints.append(builder.fptosi(a_fp, I32))
        elif kind == "gep_load":
            addr = builder.gep(func.args[2], [builder.sext(a_int, I64)])
            ints.append(builder.load(addr))
        elif kind == "store":
            addr = builder.gep(func.args[2], [k])
            builder.store(a_int, addr)
    builder.ret(ints[-1])

    verify_module(module)
    text = print_module(module)
    reparsed = parse_module(text)
    verify_module(reparsed)
    assert print_module(reparsed) == text
