"""TraceHub core: ring overflow, channel filtering, config, subscribers."""

import pickle

import pytest

from repro.trace import (
    CHANNELS,
    DEFAULT_CAPACITY,
    TraceConfig,
    TraceError,
    TraceHub,
    parse_channels,
)


def _fill(hub, n, channel="compute", source="acc", kind="add"):
    for i in range(n):
        hub.emit(channel, source, kind, tick=i * 1000)


# -- parse_channels ---------------------------------------------------------
def test_parse_channels_defaults_and_all():
    assert parse_channels(None) == CHANNELS
    assert parse_channels("all") == CHANNELS
    assert parse_channels("") == CHANNELS


def test_parse_channels_comma_string_canonical_order():
    # Order is canonicalized, duplicates dropped.
    assert parse_channels("mem, compute, mem") == ("compute", "mem")
    assert parse_channels(["sched", "dma"]) == ("dma", "sched")


def test_parse_channels_rejects_unknown():
    with pytest.raises(TraceError, match="unknown trace channel"):
        parse_channels("compute,bogus")


# -- ring buffer ------------------------------------------------------------
def test_ring_overflow_evicts_oldest_and_counts_drops():
    hub = TraceHub(capacity=8)
    _fill(hub, 20)
    assert len(hub) == 8
    # Oldest evicted: the buffer holds the 8 most recent events.
    assert [e.tick for e in hub.events()] == [t * 1000 for t in range(12, 20)]
    assert hub.emitted["compute"] == 20
    assert hub.dropped["compute"] == 12
    assert hub.total_dropped == 12


def test_drop_accounting_is_per_evicted_channel():
    hub = TraceHub(channels=("compute", "mem"), capacity=4)
    _fill(hub, 4, channel="compute")
    _fill(hub, 3, channel="mem")
    # The three mem emits evicted three compute events.
    assert hub.dropped == {"compute": 3, "mem": 0}
    assert hub.emitted == {"compute": 4, "mem": 3}


def test_no_drops_below_capacity():
    hub = TraceHub(capacity=DEFAULT_CAPACITY)
    _fill(hub, 100)
    assert hub.total_dropped == 0
    assert len(hub) == 100


def test_clear_zeroes_counters_keeps_config():
    hub = TraceHub(channels="compute", capacity=4)
    _fill(hub, 10)
    hub.clear()
    assert len(hub) == 0
    assert hub.total_emitted == 0 and hub.total_dropped == 0
    assert hub.channels == ("compute",)
    assert hub.capacity == 4


# -- channel filtering ------------------------------------------------------
def test_inactive_channels_discarded_at_source():
    hub = TraceHub(channels="compute")
    hub.emit("compute", "acc", "add", 0)
    hub.emit("mem", "spm", "read", 0)     # filtered out
    hub.emit("dma", "dma0", "start", 0)   # filtered out
    assert hub.total_emitted == 1
    assert hub.events() and hub.events()[0].channel == "compute"
    assert hub.enabled("compute") and not hub.enabled("mem")


def test_events_view_filters_by_channel():
    hub = TraceHub()
    hub.emit("compute", "acc", "add", 0)
    hub.emit("mem", "spm", "read", 10)
    assert [e.channel for e in hub.events("mem")] == ["mem"]
    assert len(hub.events()) == 2
    assert hub.sources() == ["acc", "spm"]


# -- subscribers ------------------------------------------------------------
def test_subscriber_sees_full_stream_past_capacity():
    hub = TraceHub(capacity=4)
    seen = []
    hub.subscribe(seen.append)
    _fill(hub, 10)
    assert len(seen) == 10          # listener outlives ring eviction
    assert len(hub) == 4


def test_subscriber_channel_subset():
    hub = TraceHub()
    mem_only = []
    hub.subscribe(mem_only.append, channels="mem")
    hub.emit("compute", "acc", "add", 0)
    hub.emit("mem", "spm", "read", 10)
    assert [e.channel for e in mem_only] == ["mem"]


# -- summary ----------------------------------------------------------------
def test_summary_shape_and_span():
    hub = TraceHub(channels="compute,mem", capacity=16)
    hub.emit("compute", "acc", "add", 5000, dur=2000)
    hub.emit("mem", "spm", "read", 1000)
    summary = hub.summary()
    assert summary["channels"] == ["compute", "mem"]
    assert summary["capacity"] == 16
    assert summary["total_emitted"] == 2 and summary["buffered"] == 2
    assert summary["first_tick"] == 1000 and summary["last_tick"] == 5000


def test_summary_json_via_shared_stats_path():
    import json

    hub = TraceHub(channels="compute")
    hub.emit("compute", "acc", "add", 0)
    doc = json.loads(hub.summary_json())
    assert doc["total_emitted"] == 1


# -- TraceConfig ------------------------------------------------------------
def test_config_coerce_shorthands():
    assert TraceConfig.coerce(None) is None
    assert TraceConfig.coerce(False) is None
    assert TraceConfig.coerce(True).channels == CHANNELS
    assert TraceConfig.coerce("mem,dma").channels == ("mem", "dma")
    cfg = TraceConfig(channels="compute", capacity=64)
    assert TraceConfig.coerce(cfg) is cfg


def test_config_validates():
    with pytest.raises(TraceError):
        TraceConfig(capacity=0)
    with pytest.raises(TraceError):
        TraceConfig(format="xml")
    with pytest.raises(TraceError):
        TraceConfig(channels="nope")


def test_config_pickles():
    cfg = TraceConfig(channels="compute,mem", capacity=128, out="t.json")
    clone = pickle.loads(pickle.dumps(cfg))
    assert clone == cfg
    hub = clone.make_hub()
    assert hub.channels == ("compute", "mem") and hub.capacity == 128


def test_hub_rejects_bad_capacity():
    with pytest.raises(TraceError):
        TraceHub(capacity=-1)
