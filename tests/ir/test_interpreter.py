"""Functional interpreter."""

import numpy as np
import pytest

from repro.frontend import compile_c
from repro.ir.builder import IRBuilder
from repro.ir.interpreter import Interpreter, InterpreterError
from repro.ir.memory import MemoryImage
from repro.ir.module import Function, Module
from repro.ir.types import DOUBLE, I32, I64, ptr_to, VOID


def _run_c(source, func, args, mem_size=1 << 16):
    module = compile_c(source, func)
    mem = MemoryImage(mem_size, base=0x1000)
    return Interpreter(module, mem), mem, module


def test_return_value():
    module = compile_c("int f(int a, int b) { return a * b + 1; }", "f")
    mem = MemoryImage(1 << 12)
    assert Interpreter(module, mem).run("f", [6, 7]).return_value == 43


def test_loop_and_memory():
    src = """
    void fill(int out[16], int n) {
      for (int i = 0; i < n; i++) { out[i] = i * i; }
    }
    """
    module = compile_c(src, "fill")
    mem = MemoryImage(1 << 12, base=0x100)
    addr = mem.alloc(64)
    Interpreter(module, mem).run("fill", [addr, 16])
    out = mem.read_array(addr, np.int32, 16)
    assert np.array_equal(out, np.arange(16) ** 2)


def test_data_dependent_branching():
    src = """
    int count_positive(double x[8], int n) {
      int count = 0;
      for (int i = 0; i < n; i++) {
        if (x[i] > 0.0) { count++; }
      }
      return count;
    }
    """
    module = compile_c(src, "count_positive")
    mem = MemoryImage(1 << 12, base=0x100)
    data = np.array([1.0, -2.0, 3.0, 0.0, 5.0, -6.0, 7.0, -8.0])
    addr = mem.alloc_array(data)
    result = Interpreter(module, mem).run("count_positive", [addr, 8])
    assert result.return_value == 4


def test_nested_calls():
    src = """
    int square(int x) { return x * x; }
    int sum_squares(int n) {
      int total = 0;
      for (int i = 1; i <= n; i++) { total += square(i); }
      return total;
    }
    """
    module = compile_c(src, "sum_squares")
    mem = MemoryImage(1 << 12)
    assert Interpreter(module, mem).run("sum_squares", [4]).return_value == 30


def test_intrinsic_call():
    module = compile_c("double f(double x) { return sqrt(x) + fabs(-1.0); }", "f")
    mem = MemoryImage(1 << 12)
    assert Interpreter(module, mem).run("f", [16.0]).return_value == 5.0


def test_alloca_locals():
    src = """
    int reverse_sum(int n) {
      int buf[16];
      for (int i = 0; i < n; i++) { buf[i] = i; }
      int total = 0;
      for (int i = n - 1; i >= 0; i--) { total += buf[i]; }
      return total;
    }
    """
    module = compile_c(src, "reverse_sum")
    mem = MemoryImage(1 << 14, base=0)
    assert Interpreter(module, mem).run("reverse_sum", [10]).return_value == 45


def test_instruction_limit():
    module = compile_c(
        "void spin() { int i = 0; while (i >= 0) { i = 0; } }", "spin"
    )
    mem = MemoryImage(1 << 12)
    interp = Interpreter(module, mem, max_instructions=1000)
    with pytest.raises(InterpreterError):
        interp.run("spin", [])


def test_wrong_arity():
    module = compile_c("int f(int a) { return a; }", "f")
    interp = Interpreter(module, MemoryImage(256))
    with pytest.raises(InterpreterError):
        interp.run("f", [1, 2])


def test_opcode_counts():
    module = compile_c("int f(int a) { return a * a + a; }", "f")
    result = Interpreter(module, MemoryImage(256)).run("f", [3])
    assert result.return_value == 12
    assert result.opcode_counts.get("mul") == 1
    assert result.opcode_counts.get("add") == 1


def test_block_hook_sees_every_entry():
    src = "void f(int n) { for (int i = 0; i < n; i++) { } }"
    module = compile_c(src, "f")
    interp = Interpreter(module, MemoryImage(256))
    entries = []
    interp.block_hook = lambda block: entries.append(block.name)
    interp.run("f", [5])
    # entry + 5 loop iterations (header/latch merged by simplify-cfg) + exit
    loop_entries = [n for n in entries if "loop" in n or "body" in n or "latch" in n]
    assert len(loop_entries) >= 5


def test_trace_hook_records_addresses():
    src = "void f(int out[4]) { out[2] = 7; }"
    module = compile_c(src, "f")
    mem = MemoryImage(1 << 12, base=0x100)
    addr = mem.alloc(16)
    records = []
    interp = Interpreter(module, mem, trace_hook=records.append)
    interp.run("f", [addr])
    stores = [r for r in records if r.inst.opcode == "store"]
    assert stores and stores[0].address == addr + 8


def test_phi_in_entry_rejected_at_runtime():
    m = Module("bad")
    f = Function("f", VOID, [])
    m.add_function(f)
    entry = f.add_block("entry")
    b = IRBuilder(entry)
    phi = b.phi(I32)
    b.ret()
    interp = Interpreter(m, MemoryImage(256))
    with pytest.raises(InterpreterError):
        interp.run("f", [])
