"""Fig. 13 — GEMM design-space Pareto curve.

Sweep of functional-unit allocations x memory bandwidth for the GEMM
accelerator in three memory configurations (datapath-only / +SPM /
+cache), plotting accelerator power vs execution time.

Expected shape: a Pareto frontier where more resources buy time for
power; duplicate-performance points with higher power (over-allocated
FUs) appear off the frontier; the cache configuration sits up and to
the right of the SPM one.
"""

import os

import numpy as np

from conftest import SEED, save_and_print
from repro.core.config import DeviceConfig
from repro.dse import format_table, pareto_front, to_csv
from repro.exec import ParallelSweep
from repro.workloads import get_workload

FU_LIMITS = [2, 8, 32]
PORTS = [1, 4, 16]
WORKERS = min(4, os.cpu_count() or 1)


def _configure(params):
    config = DeviceConfig(
        read_ports=params["ports"],
        write_ports=max(1, params["ports"] // 2),
        fu_limits={"fp_add": params["fus"], "fp_mul": params["fus"]},
    )
    kwargs = dict(config=config, unroll_factor=8, spm_bytes=1 << 15,  # full flatten
                  spm_read_ports=params["ports"], spm_write_ports=max(1, params["ports"] // 2))
    if params["memory"] == "ideal":
        kwargs["memory"] = "ideal"
    elif params["memory"] == "spm":
        kwargs["memory"] = "spm"
    else:
        kwargs["memory"] = "cache"
        kwargs["cache_kwargs"] = dict(size=4096, line_size=64, assoc=4)
        kwargs.pop("spm_bytes")
        kwargs.pop("spm_read_ports")
        kwargs.pop("spm_write_ports")
    return kwargs


def test_fig13(benchmark):
    workload = get_workload("gemm_dse")

    def run():
        return ParallelSweep(workers=WORKERS).run(
            workload,
            {"memory": ["ideal", "spm", "cache"], "fus": FU_LIMITS, "ports": PORTS},
            configure=_configure,
            seed=SEED,
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [p.record() for p in points]
    front = pareto_front(points, objectives=lambda p: (p.runtime_us, p.power_mw))
    for row, point in zip(rows, points):
        row["pareto"] = "*" if point in front else ""
    save_and_print(
        "fig13_gemm_pareto",
        format_table(rows, title="Fig. 13: GEMM design-space sweep (power vs time)")
        + "\n\nCSV:\n" + to_csv(rows),
    )

    assert 1 <= len(front) < len(points)
    by_config = {}
    for point in points:
        by_config.setdefault(point.params["memory"], []).append(point)
    # Ideal memory is never slower than SPM, which is never slower than
    # the cache config, at equal datapath parameters.
    for fus in FU_LIMITS:
        for ports in PORTS:
            def cycles(mem):
                return next(
                    p.cycles for p in by_config[mem]
                    if p.params["fus"] == fus and p.params["ports"] == ports
                )
            assert cycles("ideal") <= cycles("spm") <= cycles("cache")
    # Over-allocation: same cycles, more power, somewhere in the sweep.
    seen = {}
    over_allocated = False
    for point in points:
        key = (point.params["memory"], point.params["ports"], point.cycles)
        if key in seen and point.power_mw > seen[key] * 1.05:
            over_allocated = True
        seen[key] = min(seen.get(key, point.power_mw), point.power_mw)
    assert over_allocated, "sweep should expose over-allocated FU points"
