"""mem2reg: promotion and semantic preservation."""

import numpy as np

from repro.frontend import lower_to_ir, parse_c
from repro.ir.instructions import Alloca, Load, Phi, Store
from repro.ir.interpreter import Interpreter
from repro.ir.memory import MemoryImage
from repro.ir.verifier import verify_module
from repro.passes import Mem2Reg


def _lower(source):
    return lower_to_ir(parse_c(source))


def _run(module, func, args, mem_base=0x1000):
    mem = MemoryImage(1 << 16, base=mem_base)
    return Interpreter(module, mem).run(func, args).return_value


def test_scalar_allocas_removed():
    module = _lower("int f(int a) { int x = a; int y = x + 1; return y * 2; }")
    func = module.get_function("f")
    assert any(isinstance(i, Alloca) for i in func.instructions())
    assert Mem2Reg().run(func)
    verify_module(module)
    assert not any(isinstance(i, Alloca) for i in func.instructions())
    assert not any(isinstance(i, (Load, Store)) for i in func.instructions())


def test_array_allocas_survive():
    module = _lower("int f() { int buf[4]; buf[0] = 1; return buf[0]; }")
    func = module.get_function("f")
    Mem2Reg().run(func)
    assert any(isinstance(i, Alloca) for i in func.instructions())


def test_phi_inserted_for_if_else():
    module = _lower(
        "int f(int a) { int r; if (a > 0) { r = 1; } else { r = 2; } return r; }"
    )
    func = module.get_function("f")
    Mem2Reg().run(func)
    verify_module(module)
    assert any(isinstance(i, Phi) for i in func.instructions())
    assert _run(module, "f", [5]) == 1
    assert _run(module, "f", [0xFFFFFFFF]) == 2  # -1 as bit pattern


def test_loop_carried_phi_semantics():
    src = "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }"
    module = _lower(src)
    func = module.get_function("f")
    before = _run(module, "f", [10])
    Mem2Reg().run(func)
    verify_module(module)
    assert _run(module, "f", [10]) == before == 45


def test_uninitialized_local_reads_zero():
    module = _lower("int f(int a) { int x; if (a > 0) { x = 5; } return x; }")
    func = module.get_function("f")
    Mem2Reg().run(func)
    verify_module(module)
    assert _run(module, "f", [1]) == 5
    assert _run(module, "f", [0]) == 0


def test_idempotent():
    module = _lower("int f(int a) { int x = a * 2; return x; }")
    func = module.get_function("f")
    assert Mem2Reg().run(func)
    assert not Mem2Reg().run(func)


def test_semantics_preserved_on_nested_control(rng):
    src = """
    int classify(int a[32], int n) {
      int pos = 0;
      int neg = 0;
      for (int i = 0; i < n; i++) {
        if (a[i] > 0) { pos++; }
        else { if (a[i] < 0) { neg++; } }
      }
      return pos * 100 + neg;
    }
    """
    module = _lower(src)
    data = rng.integers(-10, 10, 32).astype(np.int32)

    def run(m):
        mem = MemoryImage(1 << 16, base=0x1000)
        addr = mem.alloc_array(data)
        return Interpreter(m, mem).run("classify", [addr, 32]).return_value

    before = run(module)
    Mem2Reg().run(module.get_function("classify"))
    verify_module(module)
    assert run(module) == before
