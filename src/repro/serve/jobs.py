"""Job records and the dedup-aware priority queue.

A `Job` is one client request: a kind (compile/run/sweep/analyze), a
JSON spec, a priority, and a lifecycle
(``queued -> running -> done | failed``, or ``cancelled`` before it
ever runs).  Every state change and every progress tick lands on the
job's ordered event log, which is what the SSE endpoint streams.

`JobQueue` holds the jobs.  Its defining feature is **request dedup**:
each job carries a content-addressed ``dedup_key`` (for run jobs, the
run-cache key itself — see `repro.serve.workers.job_dedup_key`), and a
submission whose key matches a still-active job does not queue a second
execution.  It becomes a *follower*: a full job record of its own that
resolves (result, failure, or cancellation of the primary) the moment
the primary resolves.  Twenty identical submissions cost one
simulation.

The queue is deliberately lock-free: every mutation happens on the
server's event loop (workers hand results back via
``call_soon_threadsafe``), and the unit tests drive it synchronously.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.exec.failures import FailureRecord


class JobState:
    """The five job states (plain strings, JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    #: States a job can still leave.
    ACTIVE = (QUEUED, RUNNING)


#: Job kinds the worker pool knows how to execute.
JOB_KINDS = ("compile", "run", "sweep", "analyze")


@dataclass
class Job:
    """One submitted request and everything that happened to it."""

    id: str
    kind: str
    spec: dict
    priority: int = 0
    state: str = JobState.QUEUED
    #: Content hash of (kind, spec); identical active requests coalesce.
    dedup_key: Optional[str] = None
    #: Set on followers: the id of the job actually executing.
    deduped_of: Optional[str] = None
    #: True when the result came from the run cache (or a dedup primary
    #: that itself hit the cache) instead of a fresh simulation.
    cache_hit: bool = False
    result: Optional[dict] = None
    failure: Optional[dict] = None
    submitted_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    #: Ordered progress log: [{"seq": n, "t": ..., "event": ..., ...}].
    events: list = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state not in JobState.ACTIVE

    def publish(self, event: str, **detail) -> None:
        """Append one progress event (thread-safe: a bare list append)."""
        self.events.append({
            "seq": len(self.events),
            "t": round(time.time(), 6),
            "event": event,
            **detail,
        })

    def to_dict(self, include_result: bool = True) -> dict:
        payload = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "dedup_key": self.dedup_key,
            "deduped_of": self.deduped_of,
            "cache_hit": self.cache_hit,
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "events": len(self.events),
            "failure": self.failure,
        }
        if include_result:
            payload["result"] = self.result
        return payload


class JobQueue:
    """Priority queue of jobs with content-addressed request dedup.

    ``claim()`` hands out the highest-priority queued job (FIFO within
    a priority level); ``resolve()`` finishes it and fans the outcome
    out to every follower that coalesced onto it.  ``pause()`` stops
    ``claim()`` from yielding work — submissions still queue — which is
    both an operational drain switch and what makes cancellation/dedup
    deterministically testable.
    """

    def __init__(self) -> None:
        self.jobs: dict[str, Job] = {}
        self._heap: list[tuple[int, int, str]] = []
        self._counter = itertools.count()
        #: dedup_key -> id of the active (queued/running) primary.
        self._active_by_key: dict[str, str] = {}
        #: primary id -> follower ids awaiting its outcome.
        self._followers: dict[str, list[str]] = {}
        self.paused = False
        self.dedup_hits = 0
        self.executed = 0
        self.cancelled = 0

    # -- submission ----------------------------------------------------
    def submit(self, kind: str, spec: dict, priority: int = 0,
               dedup_key: Optional[str] = None) -> Job:
        """Queue a request; an identical active one absorbs it instead."""
        job = Job(id=f"j{next(self._counter):06d}", kind=kind, spec=spec,
                  priority=priority, dedup_key=dedup_key)
        self.jobs[job.id] = job
        job.publish("queued")
        primary_id = (self._active_by_key.get(dedup_key)
                      if dedup_key is not None else None)
        if primary_id is not None:
            primary = self.jobs[primary_id]
            job.deduped_of = primary_id
            job.state = primary.state  # mirrors queued/running
            self._followers.setdefault(primary_id, []).append(job.id)
            self.dedup_hits += 1
            job.publish("deduped", of=primary_id)
            return job
        if dedup_key is not None:
            self._active_by_key[dedup_key] = job.id
        heapq.heappush(self._heap, (-priority, next(self._counter), job.id))
        return job

    def finish_immediately(self, job: Job, result: dict,
                           cache_hit: bool = False) -> None:
        """Short-circuit a job at submit time (run-cache hit)."""
        job.started_s = job.finished_s = time.time()
        job.state = JobState.DONE
        job.result = result
        job.cache_hit = cache_hit
        job.publish("cache_hit" if cache_hit else "done")
        self._release(job)
        self._resolve_followers(job)

    # -- worker side ---------------------------------------------------
    def claim(self) -> Optional[Job]:
        """Pop the next runnable job, or None (empty or paused)."""
        if self.paused:
            return None
        while self._heap:
            __, __, job_id = heapq.heappop(self._heap)
            job = self.jobs[job_id]
            if job.state != JobState.QUEUED:
                continue  # cancelled while queued
            job.state = JobState.RUNNING
            job.started_s = time.time()
            job.publish("running")
            for follower in self._follower_jobs(job):
                follower.state = JobState.RUNNING
                follower.started_s = job.started_s
                follower.publish("running")
            return job
        return None

    def resolve(self, job: Job, result: Optional[dict] = None,
                failure: Optional[FailureRecord] = None,
                cache_hit: bool = False) -> None:
        """Finish a claimed job and fan the outcome out to followers."""
        job.finished_s = time.time()
        job.result = result
        job.failure = failure.to_dict() if failure is not None else None
        job.cache_hit = cache_hit
        job.state = JobState.FAILED if failure is not None else JobState.DONE
        job.publish(job.state)
        self.executed += 1
        self._release(job)
        self._resolve_followers(job)

    # -- cancellation --------------------------------------------------
    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job (a follower detaches; a running one is
        past the point of no return and keeps running)."""
        job = self.jobs[job_id]
        if job.terminal:
            return job
        if job.state == JobState.RUNNING:
            return job  # can't un-run a simulation; report the state
        if job.deduped_of is not None:
            followers = self._followers.get(job.deduped_of, [])
            if job_id in followers:
                followers.remove(job_id)
        else:
            self._release(job)
            # Followers of a cancelled primary are promoted: the first
            # still-queued one becomes the new primary.
            self._promote_followers(job)
        job.state = JobState.CANCELLED
        job.finished_s = time.time()
        job.publish("cancelled")
        self.cancelled += 1
        return job

    # -- internals -----------------------------------------------------
    def _follower_jobs(self, primary: Job) -> list[Job]:
        return [self.jobs[fid] for fid in self._followers.get(primary.id, [])]

    def _release(self, job: Job) -> None:
        if (job.dedup_key is not None
                and self._active_by_key.get(job.dedup_key) == job.id):
            del self._active_by_key[job.dedup_key]

    def _resolve_followers(self, primary: Job) -> None:
        for follower in self._follower_jobs(primary):
            follower.state = primary.state
            follower.result = primary.result
            follower.failure = primary.failure
            follower.cache_hit = primary.cache_hit
            follower.finished_s = primary.finished_s
            follower.publish(primary.state, shared_with=primary.id)
        self._followers.pop(primary.id, None)

    def _promote_followers(self, cancelled_primary: Job) -> None:
        followers = self._followers.pop(cancelled_primary.id, [])
        queued = [fid for fid in followers
                  if self.jobs[fid].state == JobState.QUEUED]
        if not queued:
            return
        new_primary = self.jobs[queued[0]]
        new_primary.deduped_of = None
        if new_primary.dedup_key is not None:
            self._active_by_key[new_primary.dedup_key] = new_primary.id
        heapq.heappush(self._heap, (-new_primary.priority,
                                    next(self._counter), new_primary.id))
        new_primary.publish("promoted", was_follower_of=cancelled_primary.id)
        rest = queued[1:]
        if rest:
            self._followers[new_primary.id] = rest
            for fid in rest:
                self.jobs[fid].deduped_of = new_primary.id

    # -- ops -----------------------------------------------------------
    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False

    def depth(self) -> int:
        """Jobs still waiting to run (excludes followers and cancels)."""
        return sum(1 for job in self.jobs.values()
                   if job.state == JobState.QUEUED and job.deduped_of is None)

    def stats(self) -> dict:
        by_state: dict[str, int] = {state: 0 for state in JobState.ALL}
        by_kind: dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
            by_kind[job.kind] = by_kind.get(job.kind, 0) + 1
        return {
            "depth": self.depth(),
            "paused": self.paused,
            "jobs": len(self.jobs),
            "by_state": by_state,
            "by_kind": by_kind,
            "dedup_hits": self.dedup_hits,
            "executed": self.executed,
            "cancelled": self.cancelled,
        }
