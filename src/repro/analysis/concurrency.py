"""System-level concurrency analysis: SYS304/305/306.

Builds a per-agent access model of a platform — which accelerator, DMA
engine, or host agent reads/writes which byte ranges, and the ordering
edges the platform's synchronization primitives imply (host driver
sequencing, MMR-start handoffs, IRQ completion waits, blocking DMA
copies, stream-buffer token flow) — then computes a happens-before
relation over it and checks three rules:

======  ========  ==========================================================
SYS304  error     two agents access overlapping bytes, at least one
                  writes, and no ordering path connects the accesses
SYS305  error     cycle in the agent wait-for graph (static deadlock)
SYS306  warning   an accelerator's MMR start is not ordered after the
                  DMA-in that fills the data it reads
======  ========  ==========================================================

The model comes from two sources that cross-validate each other:
:func:`describe_concurrency` extracts it from a live platform after a
run (host ``op_log``, compute-unit ``launch_log``, static per-argument
footprints), and `repro.system.scenario_gen` builds it directly from a
generated scenario's plan, before anything simulates.  The runtime
ground truth is `repro.sim.sanitizer.AccessSanitizer`, which tracks the
same release/acquire pairs with vector clocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.diagnostics import AnalysisReport, Location, Severity


@dataclass
class AgentOp:
    """One unit of an agent's work: a launch, a DMA transfer, a driver op.

    ``reads``/``writes`` are byte ranges as ``(base, size)`` pairs.
    Consecutive ops of the same agent are implicitly ordered (program
    order); cross-agent ordering comes from explicit edges.
    """

    label: str
    agent: str
    kind: str  # "compute" | "dma" | "stream" | "host"
    reads: list[tuple[int, int]] = field(default_factory=list)
    writes: list[tuple[int, int]] = field(default_factory=list)
    index: int = -1

    def to_dict(self) -> dict:
        return {
            "label": self.label, "agent": self.agent, "kind": self.kind,
            "reads": [list(r) for r in self.reads],
            "writes": [list(w) for w in self.writes],
        }


def _overlap(a: tuple[int, int], b: tuple[int, int]) -> Optional[tuple[int, int]]:
    """Intersection of two (base, size) ranges as (lo, hi), or None."""
    lo = max(a[0], b[0])
    hi = min(a[0] + a[1], b[0] + b[1])
    return (lo, hi) if lo < hi else None


class ConcurrencyModel:
    """Agents, their ops, and the ordering/wait edges between them."""

    def __init__(self) -> None:
        self.agents: dict[str, str] = {}  # name -> kind
        self.ops: list[AgentOp] = []
        self._by_label: dict[str, AgentOp] = {}
        self.edges: list[tuple[str, str]] = []
        #: (waiter, waitee, reason) agent-level dependencies for SYS305.
        self.waits: list[tuple[str, str, str]] = []

    # -- construction ----------------------------------------------------
    def add_agent(self, name: str, kind: str) -> None:
        self.agents.setdefault(name, kind)

    def add_op(
        self,
        agent: str,
        label: str,
        kind: str = "host",
        reads: Iterable[tuple[int, int]] = (),
        writes: Iterable[tuple[int, int]] = (),
    ) -> AgentOp:
        if label in self._by_label:
            raise ValueError(f"duplicate op label '{label}'")
        self.agents.setdefault(agent, kind)
        op = AgentOp(label, agent, kind,
                     [tuple(r) for r in reads if r[1] > 0],
                     [tuple(w) for w in writes if w[1] > 0])
        op.index = len(self.ops)
        self.ops.append(op)
        self._by_label[label] = op
        return op

    def add_edge(self, src_label: str, dst_label: str) -> None:
        """Order op ``src`` before op ``dst`` (happens-before)."""
        for label in (src_label, dst_label):
            if label not in self._by_label:
                raise ValueError(f"unknown op label '{label}'")
        self.edges.append((src_label, dst_label))

    def add_wait(self, waiter: str, waitee: str, reason: str = "") -> None:
        """Record that agent ``waiter`` blocks on agent ``waitee``."""
        self.waits.append((waiter, waitee, reason))

    # -- happens-before --------------------------------------------------
    def _closure(self) -> list[int]:
        """Per-op reachability bitmasks over program order + edges.

        Fixpoint propagation, so a malformed (cyclic) op graph still
        terminates with every cycle member reaching the whole cycle.
        """
        n = len(self.ops)
        succ: list[list[int]] = [[] for _ in range(n)]
        last_of: dict[str, int] = {}
        for op in self.ops:
            prev = last_of.get(op.agent)
            if prev is not None:
                succ[prev].append(op.index)
            last_of[op.agent] = op.index
        for src, dst in self.edges:
            succ[self._by_label[src].index].append(self._by_label[dst].index)
        reach = [0] * n
        changed = True
        while changed:
            changed = False
            for i in range(n - 1, -1, -1):
                acc = reach[i]
                for j in succ[i]:
                    acc |= reach[j] | (1 << j)
                if acc != reach[i]:
                    reach[i] = acc
                    changed = True
        return reach

    def happens_before(self):
        """A predicate ``hb(i, j)`` over op indices."""
        reach = self._closure()

        def hb(i: int, j: int) -> bool:
            return bool(reach[i] >> j & 1)

        return hb

    def to_dict(self) -> dict:
        return {
            "agents": dict(self.agents),
            "ops": [op.to_dict() for op in self.ops],
            "edges": [list(e) for e in self.edges],
            "waits": [list(w) for w in self.waits],
        }


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------

def lint_concurrency(
    model: ConcurrencyModel,
    report: Optional[AnalysisReport] = None,
    max_pair_reports: int = 32,
) -> AnalysisReport:
    """Run SYS304/305/306 over a concurrency model."""
    if report is None:
        report = AnalysisReport(subject="concurrency")
    hb = model.happens_before()
    _check_races(model, hb, report, max_pair_reports)
    _check_wait_cycles(model, report)
    _check_start_ordering(model, hb, report)
    return report


def _conflict(a: AgentOp, b: AgentOp) -> Optional[tuple[str, tuple[int, int]]]:
    """First write-involved overlap between two ops' access sets."""
    for aw in a.writes:
        for bw in b.writes:
            span = _overlap(aw, bw)
            if span:
                return "write-write", span
        for br in b.reads:
            span = _overlap(aw, br)
            if span:
                return "write-read", span
    for ar in a.reads:
        for bw in b.writes:
            span = _overlap(ar, bw)
            if span:
                return "read-write", span
    return None


def _check_races(model: ConcurrencyModel, hb, report: AnalysisReport,
                 max_pair_reports: int) -> None:
    reported = 0
    for i, a in enumerate(model.ops):
        for j in range(i + 1, len(model.ops)):
            b = model.ops[j]
            if a.agent == b.agent:
                continue
            if hb(i, j) or hb(j, i):
                continue
            hit = _conflict(a, b)
            if hit is None:
                continue
            kind, (lo, hi) = hit
            if reported >= max_pair_reports:
                return
            reported += 1
            report.add(
                "SYS304", Severity.ERROR,
                Location(function=a.label, ref=b.label),
                f"unordered {kind} conflict: {a.agent} ({a.label}) and "
                f"{b.agent} ({b.label}) both touch [{lo:#x}, {hi:#x}) "
                f"with no happens-before path",
                hint="order the accesses with an IRQ wait, a blocking DMA "
                     "completion, or a stream handoff — or give the agents "
                     "disjoint buffers",
            )


def _check_wait_cycles(model: ConcurrencyModel, report: AnalysisReport) -> None:
    graph: dict[str, set[str]] = {}
    for waiter, waitee, _reason in model.waits:
        graph.setdefault(waiter, set()).add(waitee)
    reasons = {(w, e): r for w, e, r in model.waits}
    seen_cycles: set[frozenset] = set()
    color: dict[str, int] = {}  # 0 unvisited / 1 on stack / 2 done

    def visit(node: str, stack: list[str]) -> None:
        color[node] = 1
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if color.get(nxt, 0) == 1:
                cycle = stack[stack.index(nxt):] + [nxt]
                key = frozenset(cycle)
                if key in seen_cycles:
                    continue
                seen_cycles.add(key)
                steps = " -> ".join(
                    f"{a} (waits on {reasons.get((a, b), '?')})"
                    for a, b in zip(cycle, cycle[1:])
                ) + f" -> {cycle[-1]}"
                report.add(
                    "SYS305", Severity.ERROR,
                    Location(function=cycle[0]),
                    f"wait-for cycle (static deadlock): {steps}",
                    hint="every agent in the cycle blocks on the next — "
                         "break the cycle by pre-filling a stream buffer, "
                         "reordering launches, or removing a wait",
                )
            elif color.get(nxt, 0) == 0:
                visit(nxt, stack)
        stack.pop()
        color[node] = 2

    for node in sorted(graph):
        if color.get(node, 0) == 0:
            visit(node, [])


def _check_start_ordering(model: ConcurrencyModel, hb, report: AnalysisReport) -> None:
    dma_ops = [op for op in model.ops if op.kind in ("dma", "stream")]
    for compute in model.ops:
        if compute.kind != "compute":
            continue
        for dma in dma_ops:
            overlap = None
            for dw in dma.writes:
                for cr in compute.reads:
                    overlap = _overlap(dw, cr)
                    if overlap:
                        break
                if overlap:
                    break
            if overlap is None:
                continue
            if hb(dma.index, compute.index) or hb(compute.index, dma.index):
                continue
            lo, hi = overlap
            report.add(
                "SYS306", Severity.WARNING,
                Location(function=compute.label, ref=dma.label),
                f"{compute.agent} may start before {dma.agent} finishes "
                f"filling its input [{lo:#x}, {hi:#x}): the MMR start is "
                f"not ordered after the DMA-in",
                hint="wait for the DMA completion (blocking dma_copy or an "
                     "IRQ) before writing the accelerator's START bit",
            )


# ----------------------------------------------------------------------
# Live extraction
# ----------------------------------------------------------------------

def _arg_directions(func) -> dict[str, list[bool]]:
    """Per pointer-argument [reads?, writes?] from the kernel's IR."""
    from repro.analysis.memdep import collect_accesses

    dirs: dict[str, list[bool]] = {}
    for access in collect_accesses(func):
        base = access.base
        if base is None:
            continue
        entry = dirs.setdefault(base.name, [False, False])
        entry[1 if access.is_store else 0] = True
    return dirs


def _launch_access_sets(unit, regions) -> list[tuple[list, list]]:
    """(reads, writes) range lists for each recorded launch of ``unit``.

    Ranges come from the kernel's static per-argument footprint applied
    to the launch's actual pointer values.  Inexact footprints (a
    non-constant index somewhere) widen to the end of the containing
    mapped region — a sound over-approximation for the race check.
    """
    from repro.analysis.memdep import static_footprint

    func = unit.iface.func
    footprint = static_footprint(unit.iface.module, func.name)
    dirs = _arg_directions(func)

    def region_end(addr: int) -> Optional[int]:
        for region in regions:
            if region.base <= addr < region.end:
                return region.end
        return None

    sets = []
    for _tick, args in unit.launch_log:
        reads: list[tuple[int, int]] = []
        writes: list[tuple[int, int]] = []
        for arg, value in zip(func.args, args):
            if not arg.type.is_pointer:
                continue
            entry = footprint.get(f"%{arg.name}")
            if entry is None:
                continue
            base = int(value)
            nbytes = entry["bytes"]
            if not entry["exact"]:
                end = region_end(base)
                if end is not None:
                    nbytes = max(nbytes, end - base)
            if nbytes <= 0:
                continue
            direction = dirs.get(arg.name, [True, True])
            if direction[0]:
                reads.append((base, nbytes))
            if direction[1]:
                writes.append((base, nbytes))
        sets.append((reads, writes))
    return sets


def describe_concurrency(platform) -> Optional[ConcurrencyModel]:
    """Extract a concurrency model from a live platform after a run.

    Returns None when there is nothing to analyze (no host driver ran
    and no accelerator launched), so pre-run lints skip the SYS304-306
    rules cleanly.
    """
    from repro.analysis.syslint import describe_soc
    from repro.core.mmr import CTRL_START

    system = getattr(platform, "system", platform)
    objects = list(system.objects.values())
    hosts = [o for o in objects
             if hasattr(o, "op_log") and hasattr(o, "run_driver")]
    units = [o for o in objects
             if hasattr(o, "launch_log") and hasattr(o, "comm")]
    if not any(h.op_log for h in hosts) and not any(u.launch_log for u in units):
        return None

    regions = describe_soc(platform).regions
    model = ConcurrencyModel()

    # Accelerator compute ops, one per recorded launch.
    unit_ops: dict[str, list[str]] = {}
    irq_owner: dict[int, list] = {}
    mmr_owner: dict[int, object] = {}
    for unit in units:
        model.add_agent(unit.name, "accelerator")
        unit_ops[unit.name] = []
        mmr_owner[unit.comm.mmr.range.start] = unit
        for irq in unit.comm.irq_lines:
            irq_owner.setdefault(irq, []).append(unit)
        for k, (reads, writes) in enumerate(_launch_access_sets(unit, regions)):
            label = f"{unit.name}#{k}"
            model.add_op(unit.name, label, "compute", reads, writes)
            unit_ops[unit.name].append(label)

    # Stream endpoints: which window region maps onto which buffer.
    stream_windows: list[tuple] = []  # (AddrRange-like, buffer_name)
    for obj in objects:
        buffer = getattr(obj, "buffer", None)
        rng = getattr(obj, "range", None)
        if buffer is not None and rng is not None:
            stream_windows.append((rng, buffer.name))

    # Host driver replay: one op per executed driver operation, plus the
    # DMA ops it programmed and the ordering edges between them.
    buffer_producers: dict[str, list[str]] = {}
    buffer_consumers: dict[str, list[str]] = {}
    for host in hosts:
        model.add_agent(host.name, "host")
        started: dict[str, int] = {name: 0 for name in unit_ops}
        waited: dict[str, int] = {name: 0 for name in unit_ops}
        sdma_last: dict[str, str] = {}
        pending_done: list[str] = []
        for onum, (_tick, kind, args) in enumerate(host.op_log):
            label = f"{host.name}@{onum}:{kind}"
            if kind == "memcpy":
                model.add_op(host.name, label, "host",
                             reads=[(args["src"], args["size"])],
                             writes=[(args["dst"], args["size"])])
            else:
                model.add_op(host.name, label, "host")
            # A blocking DMA from the previous op completes before this
            # op executes.
            for done_label in pending_done:
                model.add_edge(done_label, label)
            pending_done = []

            if kind == "write_mmr":
                unit = mmr_owner.get(args["addr"])
                if unit is not None and args["value"] & CTRL_START:
                    k = started[unit.name]
                    if k < len(unit_ops[unit.name]):
                        model.add_edge(label, unit_ops[unit.name][k])
                        started[unit.name] = k + 1
            elif kind == "wait_irq":
                for unit in irq_owner.get(args["irq"], ()):
                    k = waited[unit.name]
                    if k < len(unit_ops[unit.name]):
                        model.add_edge(unit_ops[unit.name][k], label)
                        waited[unit.name] = k + 1
                    model.add_wait(host.name, unit.name,
                                   f"irq {args['irq']}")
            elif kind == "dma_copy":
                dma_name = args["dma"]
                model.add_agent(dma_name, "dma")
                dma_label = f"{dma_name}@{onum}"
                model.add_op(dma_name, dma_label, "dma",
                             reads=[(args["src"], args["size"])],
                             writes=[(args["dst"], args["size"])])
                model.add_edge(label, dma_label)
                model.add_wait(host.name, dma_name, "dma completion")
                pending_done.append(dma_label)
            elif kind == "start_stream":
                dma = system.objects[args["dma"]]
                model.add_agent(dma.name, "stream_dma")
                dma_label = f"{dma.name}@{onum}"
                size = args["tokens"] * dma.buffer.token_bytes
                if dma.direction == "mem_to_stream":
                    model.add_op(dma.name, dma_label, "stream",
                                 reads=[(args["addr"], size)])
                    buffer_producers.setdefault(
                        dma.buffer.name, []).append(dma_label)
                else:
                    model.add_op(dma.name, dma_label, "stream",
                                 writes=[(args["addr"], size)])
                    buffer_consumers.setdefault(
                        dma.buffer.name, []).append(dma_label)
                model.add_edge(label, dma_label)
                sdma_last[dma.name] = dma_label
            elif kind == "wait_stream":
                dma_name = args["dma"]
                if dma_name in sdma_last:
                    model.add_edge(sdma_last[dma_name], label)
                model.add_wait(host.name, dma_name, "stream drain")

    # Compute ops join the token flow of any stream window they touch.
    for op in list(model.ops):
        if op.kind != "compute":
            continue
        for rng, buffer_name in stream_windows:
            window = (rng.start, rng.size)
            if any(_overlap(window, w) for w in op.writes):
                buffer_producers.setdefault(buffer_name, []).append(op.label)
            if any(_overlap(window, r) for r in op.reads):
                buffer_consumers.setdefault(buffer_name, []).append(op.label)

    # Token flow: everything a producer did is ordered before the
    # consumer that pops its tokens (FIFO cumulative semantics); the
    # consumer statically waits on the producer for data.
    for buffer_name, producers in buffer_producers.items():
        for producer in producers:
            for consumer in buffer_consumers.get(buffer_name, ()):
                if model._by_label[producer].agent == \
                        model._by_label[consumer].agent:
                    continue
                model.add_edge(producer, consumer)
                model.add_wait(model._by_label[consumer].agent,
                               model._by_label[producer].agent,
                               f"stream {buffer_name}")
    return model
