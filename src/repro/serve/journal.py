"""Durable serving: the write-ahead job journal and crash recovery.

Everything the `JobServer` holds in memory — queued jobs, running
jobs, per-job event logs, terminal results — evaporates on a SIGKILL,
an OOM kill, or a deploy restart, even though the `RunCache` and
`ArtifactStore` *beneath* the server are durable.  `JobJournal` closes
that gap with the classic write-ahead-log recipe:

* **Append-only JSONL journal** (``<state-dir>/journal.jsonl``).
  Every submission (``rec: submit``, the full job record), every state
  transition (``rec: state``, a delta with result/failure payloads),
  and every progress event (``rec: event``) is one JSON line, written
  under a lock as a single flushed ``write()`` so concurrent worker
  threads never interleave partial lines.
* **Snapshot + compaction** (``<state-dir>/snapshot.json``).  Every
  ``snapshot_every`` appends (and on graceful drain) the full queue
  state is written atomically (temp file + ``os.replace``) and the
  journal truncated, so the journal never grows without bound and
  recovery stays O(recent activity).
* **Corrupt-tail tolerance**, in the same quarantine style as
  `RunCache`: a crash mid-append leaves a truncated final line.
  Recovery replays up to the first unparsable record, moves the
  suspect tail aside as ``journal.jsonl.corrupt`` for post-mortem,
  and rewrites the journal to the good prefix — a damaged tail can
  never poison later appends or reruns.

Recovery (`recover_queue`) replays snapshot + journal into a fresh
`JobQueue`: terminal jobs are kept verbatim (GET still serves their
results), jobs that were ``queued``/``running`` at crash time are
re-queued (keeping their attempt counter, with a ``recovered`` event
on their log), and active jobs sharing a dedup key are re-coalesced —
the first becomes the primary, the rest re-attach as followers.

Replay is idempotent by construction: event records carry their
``seq`` and are only appended past the current log length, and state
records are plain field overwrites — so records that are both in the
snapshot and still in the journal (the compaction window) apply twice
without harm.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.serve.jobs import Job, JobQueue

#: Default appends between automatic snapshot/compaction cycles.
SNAPSHOT_EVERY = 1000

#: Journal/snapshot format version, bumped on incompatible changes.
JOURNAL_VERSION = 1


@dataclass
class RecoveredState:
    """What `JobJournal.recover` found on disk."""

    #: Full job payloads (``Job.to_journal`` shape) in submission order.
    jobs: list = field(default_factory=list)
    #: Queue counters captured by the last snapshot + replayed deltas.
    counters: dict = field(default_factory=dict)
    #: ``next(self._counter)`` floor so recovered ids never collide.
    id_floor: int = 0


class JobJournal:
    """Append-only JSONL write-ahead log under ``repro serve --state-dir``.

    Thread-safe: appends come from worker threads (progress events) and
    the event loop (state transitions) alike; one lock serialises them
    and compaction.  Write failures never raise into the serving path —
    they are counted (``write_errors``) and surface as a ``degraded``
    health status instead.
    """

    JOURNAL_NAME = "journal.jsonl"
    SNAPSHOT_NAME = "snapshot.json"

    def __init__(self, state_dir: Union[str, Path],
                 snapshot_every: int = SNAPSHOT_EVERY,
                 fsync: bool = False) -> None:
        self.dir = Path(state_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.dir / self.JOURNAL_NAME
        self.snapshot_path = self.dir / self.SNAPSHOT_NAME
        self.snapshot_every = max(1, int(snapshot_every))
        self.fsync = fsync
        self._lock = threading.Lock()
        self._fh = None
        self.appends = 0
        self.appends_since_snapshot = 0
        self.snapshots = 0
        self.quarantined = 0
        self.write_errors = 0
        self.recovered_jobs = 0
        self.requeued_jobs = 0

    # -- writing -------------------------------------------------------
    def append(self, record: dict) -> None:
        """Durably append one record; a failed write degrades, never raises."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"),
                          default=str) + "\n"
        with self._lock:
            try:
                if self._fh is None:
                    self._fh = open(self.journal_path, "a", encoding="utf-8")
                self._fh.write(line)
                self._fh.flush()
                if self.fsync:
                    os.fsync(self._fh.fileno())
            except OSError:
                self.write_errors += 1
                return
            self.appends += 1
            self.appends_since_snapshot += 1

    def record_submit(self, job: Job) -> None:
        self.append({"rec": "submit", "job": job.to_journal()})

    def record_event_sink(self, job: Job, event: dict) -> None:
        """`Job.sink` hook: journal one progress event as it is published."""
        self.append({"rec": "event", "id": job.id, "e": event})

    def record_state(self, job: Job, via: Optional[str] = None) -> None:
        record = {
            "rec": "state",
            "id": job.id,
            "state": job.state,
            "deduped_of": job.deduped_of,
            "cache_hit": job.cache_hit,
            "result": job.result,
            "failure": job.failure,
            "started_s": job.started_s,
            "finished_s": job.finished_s,
            "attempts": job.attempts,
        }
        if via is not None:
            record["via"] = via
        self.append(record)

    # -- snapshot / compaction -----------------------------------------
    def should_compact(self) -> bool:
        return self.appends_since_snapshot >= self.snapshot_every

    def compact(self, queue: JobQueue) -> None:
        """Write an atomic full-state snapshot and truncate the journal.

        Must run on the thread that owns queue mutations (the server's
        event loop); concurrent progress-event appends from worker
        threads are safe either way — an event that lands after the
        snapshot read is already in its job's event list (the list
        append happens before the journal append), so replaying it on
        top of the snapshot is an idempotent no-op.
        """
        snapshot = {
            "version": JOURNAL_VERSION,
            "t": round(time.time(), 6),
            "jobs": [job.to_journal() for job in queue.jobs.values()],
            "counters": queue.counters(),
        }
        blob = json.dumps(snapshot, sort_keys=True, default=str)
        with self._lock:
            tmp = self.dir / f"{self.SNAPSHOT_NAME}.tmp{os.getpid()}"
            try:
                tmp.write_text(blob)
                os.replace(tmp, self.snapshot_path)
                if self._fh is not None:
                    self._fh.close()
                    self._fh = None
                open(self.journal_path, "w").close()
            except OSError:
                self.write_errors += 1
                return
            self.snapshots += 1
            self.appends_since_snapshot = 0

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None

    # -- recovery ------------------------------------------------------
    def recover(self) -> RecoveredState:
        """Load snapshot + journal into job payloads (no queue mutation)."""
        jobs: dict[str, dict] = {}
        order: list[str] = []
        counters: dict[str, int] = {}

        def upsert(payload: dict) -> None:
            job_id = payload.get("id")
            if not isinstance(job_id, str) or not job_id:
                raise ValueError("job record without an id")
            if job_id not in jobs:
                order.append(job_id)
            jobs[job_id] = payload

        self._load_snapshot(upsert, counters)
        self._replay_journal(jobs, upsert, counters)
        ordered = [jobs[job_id] for job_id in order]
        return RecoveredState(jobs=ordered, counters=counters,
                              id_floor=_id_floor(order))

    def _load_snapshot(self, upsert, counters: dict) -> None:
        if not self.snapshot_path.exists():
            return
        try:
            snapshot = json.loads(self.snapshot_path.read_text())
            for payload in snapshot["jobs"]:
                upsert(dict(payload))
            counters.update({k: int(v) for k, v
                             in snapshot.get("counters", {}).items()})
        except (OSError, ValueError, KeyError, TypeError):
            self._quarantine(self.snapshot_path)

    def _replay_journal(self, jobs: dict, upsert, counters: dict) -> None:
        try:
            raw = self.journal_path.read_bytes()
        except OSError:
            return
        good_lines: list[bytes] = []
        bad_tail = b""
        offset = 0
        for line in raw.splitlines(keepends=True):
            stripped = line.strip()
            if not stripped:
                offset += len(line)
                continue
            try:
                record = json.loads(stripped)
                if not isinstance(record, dict):
                    raise ValueError("journal record is not an object")
                self._apply(record, jobs, upsert, counters)
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                # A record we cannot parse means the file was cut mid-
                # append (or damaged): everything from here on is
                # suspect and order matters, so stop replaying.
                bad_tail = raw[offset:]
                break
            good_lines.append(stripped + b"\n")
            offset += len(line)
        else:
            # Every line parsed, but a final line without its newline
            # would silently merge with the next append — rewrite it.
            if raw and not raw.endswith(b"\n"):
                self._rewrite(good_lines)
        if bad_tail:
            self.quarantined += 1
            try:
                with open(self.journal_path.parent
                          / (self.JOURNAL_NAME + ".corrupt"), "ab") as fh:
                    fh.write(bad_tail)
            except OSError:
                pass
            self._rewrite(good_lines)

    def _rewrite(self, good_lines: list) -> None:
        """Replace the journal with its parsable prefix (atomic)."""
        tmp = self.dir / f"{self.JOURNAL_NAME}.tmp{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                fh.writelines(good_lines)
            os.replace(tmp, self.journal_path)
        except OSError:
            self.write_errors += 1

    @staticmethod
    def _apply(record: dict, jobs: dict, upsert, counters: dict) -> None:
        kind = record.get("rec")
        if kind == "submit":
            payload = dict(record["job"])
            payload.setdefault("events", [])
            upsert(payload)
            if payload.get("deduped_of"):
                counters["dedup_hits"] = counters.get("dedup_hits", 0) + 1
        elif kind == "event":
            payload = jobs.get(record["id"])
            if payload is None:
                return  # event for a job whose submit record was lost
            events = payload.setdefault("events", [])
            event = record["e"]
            if int(event.get("seq", len(events))) >= len(events):
                events.append(event)
        elif kind == "state":
            payload = jobs.get(record["id"])
            if payload is None:
                return
            for key in ("state", "deduped_of", "cache_hit", "result",
                        "failure", "started_s", "finished_s", "attempts"):
                if key in record:
                    payload[key] = record[key]
            via = record.get("via")
            if via == "resolve":
                counters["executed"] = counters.get("executed", 0) + 1
            elif via == "cancel":
                counters["cancelled"] = counters.get("cancelled", 0) + 1
            elif via == "retry":
                counters["retried"] = counters.get("retried", 0) + 1
        # Unknown record kinds are skipped: a newer server may have
        # written them, and ignoring beats refusing to start.

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt file aside (`RunCache` style) and count it."""
        self.quarantined += 1
        try:
            os.replace(path, path.parent / (path.name + ".corrupt"))
        except OSError:
            pass

    # -- observability -------------------------------------------------
    def stats(self) -> dict:
        return {
            "path": str(self.dir),
            "appends": self.appends,
            "appends_since_snapshot": self.appends_since_snapshot,
            "snapshots": self.snapshots,
            "quarantined": self.quarantined,
            "write_errors": self.write_errors,
            "recovered_jobs": self.recovered_jobs,
            "requeued_jobs": self.requeued_jobs,
        }


def _id_floor(job_ids: list) -> int:
    """Smallest safe ``itertools.count`` start given recovered ids."""
    floor = 0
    for job_id in job_ids:
        digits = job_id[1:] if job_id[:1] == "j" else job_id
        if digits.isdigit():
            floor = max(floor, int(digits) + 1)
    return floor


def recover_queue(queue: JobQueue, journal: JobJournal) -> dict:
    """Rebuild ``queue`` from ``journal``; returns a recovery summary.

    Attach the journal to the queue *before* calling this: the
    recovery mutations themselves (``recovered`` events, re-queue
    state records) are journaled, so a crash during recovery replays
    cleanly on the next start.
    """
    recovered = journal.recover()
    requeued = 0
    for payload in recovered.jobs:
        try:
            job = Job.from_journal(payload)
        except (KeyError, TypeError, ValueError):
            journal.quarantined += 1
            continue
        if queue.adopt(job):
            requeued += 1
    queue.bump_counter(recovered.id_floor)
    queue.restore_counters(recovered.counters)
    journal.recovered_jobs = len(recovered.jobs)
    journal.requeued_jobs = requeued
    return {
        "recovered_jobs": len(recovered.jobs),
        "requeued_jobs": requeued,
        "quarantined": journal.quarantined,
    }
