"""Simulation-as-a-service: an async job server over the caches.

The execution substrate already exists — `SimContext` runs one kernel,
`ParallelSweep` runs grids with timeouts/retries/failure isolation, and
the content-addressed `RunCache`/`ArtifactStore` make repeats free.
This package is the multi-tenant front door on top of it:

* :class:`JobQueue` (`repro.serve.jobs`) — priority queue of
  compile/run/sweep/analyze jobs with content-addressed request dedup:
  two identical submissions coalesce into one execution, both job
  records pointing at the shared result.
* :class:`WorkerPool` (`repro.serve.workers`) — executes claimed jobs
  in background executor threads so the event loop stays responsive;
  a crashing job becomes a per-job `FailureRecord`, never server death.
* :class:`JobServer` (`repro.serve.server`) — stdlib-only asyncio
  HTTP/JSON API (``repro serve``): ``POST /v1/jobs``,
  ``GET /v1/jobs/{id}``, ``GET /v1/jobs/{id}/events`` (SSE progress),
  ``DELETE /v1/jobs/{id}``, ``GET /v1/stats``, ``GET /healthz``,
  ``GET /version``.
* :class:`ServeClient` (`repro.serve.client`) — thin `http.client`
  wrapper used by ``repro submit`` and the tests.
* :class:`JobJournal` (`repro.serve.journal`) — the write-ahead log
  behind ``repro serve --state-dir``: every submission, state change,
  and progress event journaled; a restarted server replays it,
  re-queues in-flight jobs, and still serves GETs for finished ones.
* :class:`CircuitBreaker` (`repro.serve.jobs`) — per-dedup-key
  fail-fast after K consecutive failures, with cooldown + half-open
  probe.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import CircuitBreaker, Job, JobQueue, JobState
from repro.serve.journal import JobJournal, recover_queue
from repro.serve.server import JobServer, start_server_thread
from repro.serve.workers import WorkerPool, job_dedup_key, run_spec_kwargs

__all__ = [
    "CircuitBreaker",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobState",
    "JobServer",
    "ServeClient",
    "ServeError",
    "WorkerPool",
    "job_dedup_key",
    "recover_queue",
    "run_spec_kwargs",
    "start_server_thread",
]
