"""CNN first-layer kernels for the multi-accelerator study (Fig. 16).

Three stages — 3x3 valid convolution, ReLU, 2x2 max-pool — in two
styles: *batch* kernels that read/write whole arrays in scratchpad
memory (scenarios a and b), and *stream* kernels that pop/push tokens
through stream-buffer windows (scenario c).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload, WorkloadData

IN = 16                 # input is IN x IN
CONV = IN - 2           # 14x14 after 3x3 valid conv
POOL = CONV // 2        # 7x7 after 2x2 pooling

CONV_SOURCE = f"""
void conv2d(double image[{IN * IN}], double kernel[9], double out[{CONV * CONV}]) {{
  double c0 = kernel[0];
  double c1 = kernel[1];
  double c2 = kernel[2];
  double c3 = kernel[3];
  double c4 = kernel[4];
  double c5 = kernel[5];
  double c6 = kernel[6];
  double c7 = kernel[7];
  double c8 = kernel[8];
  for (int r = 0; r < {CONV}; r++) {{
    int r0 = r * {IN};
    int r1 = (r + 1) * {IN};
    int r2 = (r + 2) * {IN};
    for (int c = 0; c < {CONV}; c++) {{
      double acc = c0 * image[r0 + c] + c1 * image[r0 + c + 1]
                 + c2 * image[r0 + c + 2]
                 + c3 * image[r1 + c] + c4 * image[r1 + c + 1]
                 + c5 * image[r1 + c + 2]
                 + c6 * image[r2 + c] + c7 * image[r2 + c + 1]
                 + c8 * image[r2 + c + 2];
      out[r * {CONV} + c] = acc;
    }}
  }}
}}
"""

RELU_SOURCE = f"""
void relu(double in[{CONV * CONV}], double out[{CONV * CONV}]) {{
  for (int i = 0; i < {CONV * CONV}; i++) {{
    double v = in[i];
    out[i] = v > 0.0 ? v : 0.0;
  }}
}}
"""

POOL_SOURCE = f"""
void maxpool(double in[{CONV * CONV}], double out[{POOL * POOL}]) {{
  for (int r = 0; r < {POOL}; r++) {{
    for (int c = 0; c < {POOL}; c++) {{
      double a = in[(2 * r) * {CONV} + 2 * c];
      double b = in[(2 * r) * {CONV} + 2 * c + 1];
      double x = in[(2 * r + 1) * {CONV} + 2 * c];
      double y = in[(2 * r + 1) * {CONV} + 2 * c + 1];
      double m1 = a > b ? a : b;
      double m2 = x > y ? x : y;
      out[r * {POOL} + c] = m1 > m2 ? m1 : m2;
    }}
  }}
}}
"""

# --- streaming variants -----------------------------------------------------
# The line ring buffer holds 4 rows (not the minimal 3) so filling row
# r+1 never overwrites a row the in-flight computation of row r still
# reads -- the fill and compute phases overlap in the pipeline.
CONV_STREAM_SOURCE = f"""
void conv2d_stream(double sin[1], double sout[1], double win[{4 * IN}],
                   double kernel[9]) {{
  double c0 = kernel[0];
  double c1 = kernel[1];
  double c2 = kernel[2];
  double c3 = kernel[3];
  double c4 = kernel[4];
  double c5 = kernel[5];
  double c6 = kernel[6];
  double c7 = kernel[7];
  double c8 = kernel[8];
  for (int r = 0; r < {IN}; r++) {{
    int ring = r % 4;
    #pragma unroll 8
    for (int c = 0; c < {IN}; c++) {{
      win[ring * {IN} + c] = sin[0];
    }}
    if (r >= 2) {{
      int r0 = ((r - 2) % 4) * {IN};
      int r1 = ((r - 1) % 4) * {IN};
      int r2 = (r % 4) * {IN};
      #pragma unroll 14
      for (int c = 0; c < {CONV}; c++) {{
        double acc = c0 * win[r0 + c] + c1 * win[r0 + c + 1]
                   + c2 * win[r0 + c + 2]
                   + c3 * win[r1 + c] + c4 * win[r1 + c + 1]
                   + c5 * win[r1 + c + 2]
                   + c6 * win[r2 + c] + c7 * win[r2 + c + 1]
                   + c8 * win[r2 + c + 2];
        sout[0] = acc;
      }}
    }}
  }}
}}
"""

RELU_STREAM_SOURCE = f"""
void relu_stream(double sin[1], double sout[1]) {{
  #pragma unroll 4
  for (int i = 0; i < {CONV * CONV}; i++) {{
    double v = sin[0];
    sout[0] = v > 0.0 ? v : 0.0;
  }}
}}
"""

POOL_STREAM_SOURCE = f"""
void maxpool_stream(double sin[1], double sout[1], double rowbuf[{CONV}]) {{
  for (int r = 0; r < {CONV}; r++) {{
    if (r % 2 == 0) {{
      #pragma unroll 14
      for (int c = 0; c < {CONV}; c++) {{
        rowbuf[c] = sin[0];
      }}
    }} else {{
      #pragma unroll 7
      for (int c = 0; c < {POOL}; c++) {{
        double a = rowbuf[2 * c];
        double b = rowbuf[2 * c + 1];
        double x = sin[0];
        double y = sin[0];
        double m1 = a > b ? a : b;
        double m2 = x > y ? x : y;
        sout[0] = m1 > m2 ? m1 : m2;
      }}
    }}
  }}
}}
"""


def golden_layer(image: np.ndarray, kernel: np.ndarray):
    """Conv -> ReLU -> pool reference pipeline."""
    conv = np.zeros((CONV, CONV))
    for r in range(CONV):
        for c in range(CONV):
            acc = 0.0
            for kr in range(3):
                for kc in range(3):
                    acc += kernel[kr * 3 + kc] * image[r + kr, c + kc]
            conv[r, c] = acc
    relu = np.maximum(conv, 0.0)
    pool = np.zeros((POOL, POOL))
    for r in range(POOL):
        for c in range(POOL):
            pool[r, c] = max(
                relu[2 * r, 2 * c], relu[2 * r, 2 * c + 1],
                relu[2 * r + 1, 2 * c], relu[2 * r + 1, 2 * c + 1],
            )
    return conv, relu, pool


def make_layer_data(rng: np.random.Generator):
    image = rng.uniform(-1.0, 1.0, (IN, IN))
    kernel = rng.uniform(-1.0, 1.0, 9)
    conv, relu, pool = golden_layer(image, kernel)
    return image, kernel, conv, relu, pool


def make_conv_data(rng: np.random.Generator) -> WorkloadData:
    image, kernel, conv, __, __ = make_layer_data(rng)
    return WorkloadData(
        inputs={"image": image, "kernel": kernel,
                "out": np.zeros((CONV, CONV))},
        output_names=["out"],
        golden={"out": conv},
    )


CONV_WORKLOAD = Workload(
    name="conv2d",
    source=CONV_SOURCE,
    func_name="conv2d",
    arg_order=["image", "kernel", "out"],
    make_data=make_conv_data,
    description=f"3x3 valid convolution over {IN}x{IN}",
)
