"""`ServeClient`: the thin stdlib HTTP client for a running `JobServer`.

Used by ``repro submit``, the test suite, and the serve benchmark.
One method per endpoint, plus `wait()` (poll a job to a terminal
state) and `events()` (iterate the SSE progress stream as dicts,
transparently reconnecting after a dropped connection and resuming
from the last seen ``seq`` via the ``Last-Event-ID`` header).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterator, Optional

from repro.serve.jobs import JobState


class ServeError(RuntimeError):
    """A non-2xx response from the server."""

    def __init__(self, status: int, payload: dict) -> None:
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")


class ServeClient:
    def __init__(self, host: str = "127.0.0.1", port: int = 8333,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read() or b"{}")
            if response.status >= 400:
                raise ServeError(response.status, data)
            return data
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def version(self) -> str:
        return self._request("GET", "/version")["version"]

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def submit(self, kind: str, spec: dict, priority: int = 0) -> dict:
        """POST a job; returns the job record (may already be done on a
        submit-time run-cache hit)."""
        return self._request("POST", "/v1/jobs", {
            "kind": kind, "spec": spec, "priority": priority,
        })["job"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/v1/jobs/{job_id}")["job"]

    def pause(self) -> None:
        self._request("POST", "/v1/queue/pause")

    def resume(self) -> None:
        self._request("POST", "/v1/queue/resume")

    def shutdown(self, mode: str = "now") -> dict:
        """Stop the server; ``mode="drain"`` lets running jobs finish
        (up to the server's drain timeout) before it exits."""
        return self._request("POST", f"/v1/shutdown?mode={mode}")

    # -- conveniences --------------------------------------------------
    def wait(self, job_id: str, timeout: float = 120.0,
             poll_s: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] not in JobState.ACTIVE:
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s")
            time.sleep(poll_s)

    def _event_stream(self, job_id: str,
                      last_seq: Optional[int] = None) -> Iterator[dict]:
        """One SSE connection, yielding events after ``last_seq``."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {}
            if last_seq is not None:
                headers["Last-Event-ID"] = str(last_seq)
            conn.request("GET", f"/v1/jobs/{job_id}/events",
                         headers=headers)
            response = conn.getresponse()
            if response.status >= 400:
                raise ServeError(response.status,
                                 json.loads(response.read() or b"{}"))
            for raw in response:
                line = raw.decode("utf-8").strip()
                if line.startswith("data:"):
                    yield json.loads(line[len("data:"):])
        finally:
            conn.close()

    def events(self, job_id: str, reconnect: bool = True,
               max_reconnects: int = 10,
               reconnect_delay_s: float = 0.2) -> Iterator[dict]:
        """Stream the job's SSE progress events as dicts.

        The stream ends when the job reaches a terminal state.  A
        dropped connection (server restart, network blip) is not the
        end: the client reconnects — up to ``max_reconnects``
        consecutive times — and resumes from the last ``seq`` it saw
        via the ``Last-Event-ID`` header, so no event is missed or
        duplicated.  Any successfully received event resets the
        reconnect budget.  A clean close is double-checked against the
        job's state: only a terminal job ends the iteration.
        """
        last_seq: Optional[int] = None
        consecutive = 0
        while True:
            dropped = False
            try:
                for event in self._event_stream(job_id, last_seq):
                    seq = event.get("seq")
                    if isinstance(seq, int):
                        last_seq = seq
                    consecutive = 0
                    yield event
            except (http.client.HTTPException, OSError):
                dropped = True  # ServeError (404 etc.) propagates above
            if not reconnect:
                return
            if not dropped:
                # Clean close: trust it only if the job really is done
                # (a draining/restarting server may close early).
                try:
                    job = self.job(job_id)
                except (http.client.HTTPException, OSError):
                    dropped = True
                else:
                    if job["state"] not in JobState.ACTIVE:
                        return
            consecutive += 1
            if consecutive > max_reconnects:
                raise ConnectionError(
                    f"SSE stream for {job_id} dropped and "
                    f"{max_reconnects} reconnects failed")
            time.sleep(reconnect_delay_s)
