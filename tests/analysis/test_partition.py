"""DEP204: sweep grids that vary unclassified parameters.

An unclassified varying parameter silently degrades a retimed sweep to
full re-simulation (it lands on the datapath side, one full run per
distinct value).  DEP204 is the loud version of that degradation.
"""

from repro.analysis import check_sweep_partition
from repro.core.config import DeviceConfig


def _codes(report):
    return [d.code for d in report.diagnostics]


def test_classified_memory_grid_is_clean():
    report = check_sweep_partition([
        {"spm_read_ports": 1, "memory": "spm"},
        {"spm_read_ports": 4, "memory": "spm"},
    ])
    assert _codes(report) == []
    assert report.meta["partition"]["spm_read_ports"] == "memory"


def test_varying_unclassified_kwarg_warns():
    report = check_sweep_partition([
        {"spm_read_ports": 1, "burst": 2},
        {"spm_read_ports": 1, "burst": 8},
    ])
    assert _codes(report) == ["DEP204"]
    assert "burst" in report.diagnostics[0].message
    assert report.meta["partition"]["burst"] == "unclassified"


def test_constant_unclassified_kwarg_is_fine():
    # Only *varying* parameters can split datapath groups.
    report = check_sweep_partition([
        {"spm_read_ports": 1, "burst": 8},
        {"spm_read_ports": 4, "burst": 8},
    ])
    assert _codes(report) == []


def test_config_fields_are_classified_field_wise():
    report = check_sweep_partition([
        {"config": DeviceConfig(read_ports=1)},
        {"config": DeviceConfig(read_ports=8)},
    ])
    assert _codes(report) == []
    assert report.meta["partition"]["config.read_ports"] == "memory"


def test_kwarg_absent_from_some_points_counts_as_varying():
    report = check_sweep_partition([
        {"spm_read_ports": 1, "burst": 8},
        {"spm_read_ports": 1},
    ])
    assert _codes(report) == ["DEP204"]
