"""Cluster last-level cache between the local crossbar and DRAM."""

import numpy as np

from repro.frontend import compile_c
from repro.hw.default_profile import default_profile
from repro.mem.cache import Cache
from repro.core.mmr import ARGS_OFFSET, CTRL_IRQ_EN, CTRL_START
from repro.system.soc import build_soc

KERNEL = """
void twice(double a[64], double out[64]) {
  for (int i = 0; i < 64; i++) { out[i] = a[i] * 2.0; }
}
"""


def _run(with_llc, rng):
    soc = build_soc(dram_size=1 << 18)
    soc.dram.bytes_per_cycle = 2
    cluster = soc.add_cluster("cl")
    unit = cluster.add_accelerator(
        "acc", compile_c(KERNEL, "k"), "twice", default_profile()
    )
    # Accelerator operates directly on DRAM data through the cluster.
    cluster.route_to_global(unit, soc.dram.range)
    unit.comm.connect_irq(soc.irq.line(0))
    llc = None
    if with_llc:
        llc = Cache("llc", soc.system, size=8192, line_size=64, assoc=4)
        cluster.connect_global(soc.global_xbar, soc.dram.range, llc=llc)
    else:
        soc.finalize()

    data = rng.uniform(-1, 1, 64)
    da = soc.dram.image.alloc_array(data)
    dout = soc.dram.image.alloc(512)
    host = soc.host
    mmr = unit.comm.mmr.range.start

    def driver(h):
        yield h.write_mmr(mmr + ARGS_OFFSET + 0, da)
        yield h.write_mmr(mmr + ARGS_OFFSET + 8, dout)
        yield h.write_mmr(mmr, CTRL_START | CTRL_IRQ_EN)
        yield h.wait_irq(0)

    host.run_driver(driver(host))
    cause = soc.run(max_ticks=10_000_000_000)
    assert host.finished, cause
    out = soc.dram.image.read_array(dout, np.float64, 64)
    assert np.allclose(out, data * 2.0)
    return unit.engine.total_cycles, llc


def test_llc_preserves_correctness_and_absorbs_traffic(rng):
    cycles_no_llc, __ = _run(False, rng)
    cycles_llc, llc = _run(True, rng)
    assert llc.stat_hits.value() > 0, "LLC saw no reuse"
    # Sequential doubles share 64B lines: most accesses hit in the LLC.
    assert llc.stat_hits.value() > llc.stat_misses.value()
    # Timing stays in the same ballpark (the pipelined engine already
    # hides most DRAM latency at this working-set size).
    assert cycles_llc <= cycles_no_llc * 1.10
