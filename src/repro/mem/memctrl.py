"""Accelerator-side memory controller.

Sits between the LLVM runtime engine's memory queues and the system:
holds pending reads/writes, issues up to ``read_ports`` reads and
``write_ports`` writes per cycle (the paper's Fig. 14 sweep knob),
routes each request to the memory port covering its address (private
SPM, cache, or the cluster crossbar), and delivers completions back to
the requester.  An "ideal" mode services everything in one cycle with
no port limit — the datapath-only configuration of Fig. 13.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.clock import ClockDomain
from repro.sim.packet import Packet, read_packet, write_packet
from repro.sim.ports import MasterPort, PortError
from repro.sim.simobject import AddrRange, SimObject, System


@dataclass
class MemRequest:
    """One outstanding accelerator memory operation."""

    is_read: bool
    addr: int
    size: int
    data: Optional[bytes] = None
    on_complete: Optional[Callable[["MemRequest"], None]] = None
    result: Optional[bytes] = None
    issued: bool = False
    issue_tick: int = -1
    complete_tick: int = -1


class AcceleratorMemController(SimObject):
    def __init__(
        self,
        name: str,
        system: System,
        read_ports: int = 2,
        write_ports: int = 2,
        ideal: bool = False,
        ideal_latency_cycles: int = 1,
        clock: Optional[ClockDomain] = None,
        agent: Optional[str] = None,
    ) -> None:
        super().__init__(name, system, clock)
        self.read_ports = read_ports
        self.write_ports = write_ports
        self.ideal = ideal
        self.ideal_latency_cycles = ideal_latency_cycles
        # Agent identity stamped on outgoing packets for access
        # attribution (the owning compute unit's name, when the comm
        # interface built us).
        self.agent = agent or name
        self._routes: list[tuple[AddrRange, MasterPort]] = []
        # Device regions with strictly-ordered access semantics (stream
        # windows, MMRs of other devices): same-address loads must not
        # be reordered by the runtime scheduler.
        self.strict_ranges: list[AddrRange] = []
        self.read_queue: deque[MemRequest] = deque()
        self.write_queue: deque[MemRequest] = deque()
        self._inflight: dict[int, MemRequest] = {}
        self._issued_this_cycle = [0, 0]  # [reads, writes]
        self._cycle_stamp = -1
        self.stat_reads = self.stats.scalar("reads")
        self.stat_writes = self.stats.scalar("writes")
        self.stat_read_stalls = self.stats.scalar("read_port_stalls")
        self.stat_write_stalls = self.stats.scalar("write_port_stalls")
        self.stat_bytes = self.stats.scalar("bytes")

    # -- wiring -------------------------------------------------------------
    def add_route(self, addr_range: AddrRange, label: str = "") -> MasterPort:
        """Create a master port serving ``addr_range``; bind it to a slave."""
        port = MasterPort(
            f"{self.name}.m{label or len(self._routes)}",
            recv_timing_resp=self._recv_timing_resp,
            owner=self,
        )
        self._routes.append((addr_range, port))
        return port

    def add_strict_range(self, addr_range: AddrRange) -> None:
        self.strict_ranges.append(addr_range)

    def is_strict(self, addr: int) -> bool:
        return any(r.contains(addr) for r in self.strict_ranges)

    def _route(self, addr: int, size: int) -> MasterPort:
        for addr_range, port in self._routes:
            if addr_range.contains(addr, size):
                return port
        raise PortError(f"{self.name}: no memory route for {addr:#x} (+{size})")

    # -- queueing API (called by the runtime engine) -----------------------------
    def enqueue_read(
        self, addr: int, size: int, on_complete: Callable[[MemRequest], None]
    ) -> MemRequest:
        if self._finj is not None:
            self._finj.on_access(self)
        request = MemRequest(True, addr, size, on_complete=on_complete)
        self.read_queue.append(request)
        return request

    def enqueue_write(
        self, addr: int, data: bytes, on_complete: Callable[[MemRequest], None]
    ) -> MemRequest:
        if self._finj is not None:
            self._finj.on_access(self)
        request = MemRequest(False, addr, len(data), data=bytes(data), on_complete=on_complete)
        self.write_queue.append(request)
        return request

    @property
    def outstanding(self) -> int:
        return len(self.read_queue) + len(self.write_queue) + len(self._inflight)

    # -- issue logic -----------------------------------------------------------
    def pump(self) -> None:
        """Issue as many queued requests as this cycle's ports allow.

        Called by the compute unit every cycle (and after completions).
        """
        cycle = self.cur_cycle
        if cycle != self._cycle_stamp:
            self._cycle_stamp = cycle
            self._issued_this_cycle = [0, 0]
        if self._finj is not None and self._finj.stalled(self):
            # Injected port stall: nothing issues this cycle.  The
            # compute unit re-pumps every cycle, so a finite stall
            # resumes on its own; an unbounded one is a livelock for
            # the watchdog to diagnose.
            return
        self._issue(self.read_queue, 0, self.read_ports, self.stat_read_stalls)
        self._issue(self.write_queue, 1, self.write_ports, self.stat_write_stalls)

    def _issue(self, queue: deque, slot: int, limit: int, stall_stat) -> None:
        while queue:
            if not self.ideal and self._issued_this_cycle[slot] >= limit:
                stall_stat.inc(len(queue))
                return
            request = queue.popleft()
            if self._finj is not None and self._finj.drop_request(self, request):
                # Injected lost transaction: the request vanishes and its
                # completion callback never fires.
                continue
            request.issued = True
            request.issue_tick = self.cur_tick
            self._issued_this_cycle[slot] += 1
            if request.is_read:
                self.stat_reads.inc()
            else:
                self.stat_writes.inc()
            self.stat_bytes.inc(request.size)
            if self.ideal:
                self._complete_ideal(request)
                continue
            if request.is_read:
                pkt = read_packet(request.addr, request.size,
                                  origin=request, agent=self.agent)
            else:
                pkt = write_packet(request.addr, request.data,
                                   origin=request, agent=self.agent)
            port = self._route(request.addr, request.size)
            if not port.send_timing_req(pkt):
                # Backpressure: try again next cycle.
                request.issued = False
                self._issued_this_cycle[slot] -= 1
                queue.appendleft(request)
                self.schedule_callback_in_cycles(self.pump, 1, name=f"{self.name}.pump")
                return
            self._inflight[pkt.pkt_id] = request

    def _complete_ideal(self, request: MemRequest) -> None:
        # Ideal memory: functional access against whichever route matches,
        # completing after a fixed latency.  The functional path bypasses
        # the memory-side sanitizer hooks, so record the access here.
        if self._san is not None:
            self._san.record(self.agent, request.addr, request.size,
                             not request.is_read, self.cur_tick)
        port = self._route(request.addr, request.size)
        if request.is_read:
            pkt = read_packet(request.addr, request.size, origin=request)
            request.result = port.send_functional(pkt).data
        else:
            pkt = write_packet(request.addr, request.data, origin=request)
            port.send_functional(pkt)
        self.schedule_callback_in_cycles(
            lambda r=request: self._finish(r),
            self.ideal_latency_cycles,
            name=f"{self.name}.ideal",
        )

    def _recv_timing_resp(self, pkt: Packet) -> None:
        request = self._inflight.pop(pkt.pkt_id, None)
        if request is None:
            raise PortError(f"{self.name}: orphan response {pkt}")
        if request.is_read:
            request.result = pkt.data
        self._finish(request)

    def _finish(self, request: MemRequest) -> None:
        request.complete_tick = self.cur_tick
        hub = self._thub
        if hub is not None:
            # One span per accelerator memory op, issue -> completion.
            hub.emit(
                "mem", self.name, "read" if request.is_read else "write",
                request.issue_tick,
                dur=request.complete_tick - request.issue_tick,
                args={"addr": request.addr, "size": request.size},
            )
        if request.on_complete is not None:
            request.on_complete(request)
