"""Static CDFG elaboration and FU mapping."""

from repro.core.cdfg import StaticCDFG
from repro.frontend import compile_c

SRC = """
void k(double a[16], double b[16], double c[16]) {
  for (int i = 0; i < 16; i++) {
    c[i] = a[i] * b[i] + a[i];
  }
}
"""


def _cdfg(fu_limits=None, unroll_factor=1):
    module = compile_c(SRC, unroll_factor=unroll_factor)
    return StaticCDFG(module.get_function("k"), fu_limits=fu_limits)


def test_one_to_one_mapping_default():
    cdfg = _cdfg()
    assert cdfg.fu_counts["fp_mul"] == 1
    assert cdfg.fu_counts["fp_add"] == 1
    # Dedicated instance ids assigned per static op.
    mul_nodes = [n for n in cdfg.nodes.values() if n.fu_class == "fp_mul"]
    assert all(n.fu_instance is not None for n in mul_nodes)


def test_unrolling_grows_datapath():
    small = _cdfg()
    big = _cdfg(unroll_factor=4)
    assert big.fu_counts["fp_mul"] == 4 * small.fu_counts["fp_mul"]
    assert big.register_bits > small.register_bits


def test_fu_limits_cap_counts():
    cdfg = _cdfg(fu_limits={"fp_mul": 2}, unroll_factor=8)
    assert cdfg.fu_counts["fp_mul"] == 2
    assert cdfg.static_op_counts["fp_mul"] == 8
    # Constrained class becomes pooled: no dedicated instance ids.
    mul_nodes = [n for n in cdfg.nodes.values() if n.fu_class == "fp_mul"]
    assert all(n.fu_instance is None for n in mul_nodes)


def test_limit_never_exceeds_static_count():
    cdfg = _cdfg(fu_limits={"fp_mul": 100})
    assert cdfg.fu_counts["fp_mul"] == 1


def test_register_bits_counts_value_producers():
    cdfg = _cdfg()
    expected = sum(
        node.inst.type.bit_width()
        for node in cdfg.nodes.values()
        if node.inst.produces_value
    )
    assert cdfg.register_bits == expected
    assert cdfg.register_bits > 0


def test_node_classification():
    cdfg = _cdfg()
    kinds = {"load": 0, "store": 0, "branch": 0, "compute": 0, "phi": 0}
    for node in cdfg.nodes.values():
        kinds["load"] += node.is_load
        kinds["store"] += node.is_store
        kinds["branch"] += node.is_branch
        kinds["compute"] += node.is_compute
        kinds["phi"] += node.is_phi
    assert kinds["load"] >= 2
    assert kinds["store"] >= 1
    assert kinds["branch"] >= 1
    assert kinds["phi"] >= 1


def test_blocks_indexed_by_name():
    cdfg = _cdfg()
    func = cdfg.func
    for block in func.blocks:
        nodes = cdfg.block_nodes(block)
        assert [n.inst for n in nodes] == block.instructions


def test_summary_fields():
    summary = _cdfg().summary()
    assert summary["function"] == "k"
    assert summary["instructions"] == _cdfg().total_instructions()
    assert "fu_counts" in summary
