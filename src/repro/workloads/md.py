"""Molecular dynamics kernels (MachSuite md/knn and md/grid), scaled.

MD-KNN: Lennard-Jones forces over a fixed k-nearest-neighbour list
(32 atoms, 8 neighbours).  Heavily floating-point — the hardest timing
case in the paper's Fig. 10.

MD-Grid: all-pairs LJ interactions between particles of neighbouring
cells on a 2x2x2 cell grid with 4 particles per cell.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload, WorkloadData

N_ATOMS = 32
MAX_NEIGHBORS = 8
LJ1 = 1.5
LJ2 = 2.0

SOURCE_KNN = f"""
void md_knn(double force_x[{N_ATOMS}], double force_y[{N_ATOMS}],
            double force_z[{N_ATOMS}],
            double position_x[{N_ATOMS}], double position_y[{N_ATOMS}],
            double position_z[{N_ATOMS}], int NL[{N_ATOMS * MAX_NEIGHBORS}]) {{
  for (int i = 0; i < {N_ATOMS}; i++) {{
    double i_x = position_x[i];
    double i_y = position_y[i];
    double i_z = position_z[i];
    double fx = 0;
    double fy = 0;
    double fz = 0;
    for (int j = 0; j < {MAX_NEIGHBORS}; j++) {{
      int jidx = NL[i * {MAX_NEIGHBORS} + j];
      double delx = i_x - position_x[jidx];
      double dely = i_y - position_y[jidx];
      double delz = i_z - position_z[jidx];
      double r2inv = 1.0 / (delx * delx + dely * dely + delz * delz);
      double r6inv = r2inv * r2inv * r2inv;
      double potential = r6inv * ({LJ1} * r6inv - {LJ2});
      double force = r2inv * potential;
      fx += delx * force;
      fy += dely * force;
      fz += delz * force;
    }}
    force_x[i] = fx;
    force_y[i] = fy;
    force_z[i] = fz;
  }}
}}
"""


def make_data_knn(rng: np.random.Generator) -> WorkloadData:
    pos = rng.uniform(0.0, 4.0, size=(3, N_ATOMS))
    nl = np.zeros((N_ATOMS, MAX_NEIGHBORS), dtype=np.int32)
    for i in range(N_ATOMS):
        dists = np.sum((pos[:, i, None] - pos) ** 2, axis=0)
        dists[i] = np.inf
        nl[i] = np.argsort(dists)[:MAX_NEIGHBORS]
    golden = np.zeros((3, N_ATOMS))
    for i in range(N_ATOMS):
        fx = fy = fz = 0.0
        for j in range(MAX_NEIGHBORS):
            jidx = int(nl[i, j])
            delx = pos[0, i] - pos[0, jidx]
            dely = pos[1, i] - pos[1, jidx]
            delz = pos[2, i] - pos[2, jidx]
            r2inv = 1.0 / (delx * delx + dely * dely + delz * delz)
            r6inv = r2inv * r2inv * r2inv
            potential = r6inv * (LJ1 * r6inv - LJ2)
            force = r2inv * potential
            fx += delx * force
            fy += dely * force
            fz += delz * force
        golden[0, i], golden[1, i], golden[2, i] = fx, fy, fz
    zeros = np.zeros(N_ATOMS)
    return WorkloadData(
        inputs={
            "force_x": zeros.copy(), "force_y": zeros.copy(), "force_z": zeros.copy(),
            "position_x": pos[0].copy(), "position_y": pos[1].copy(),
            "position_z": pos[2].copy(), "NL": nl,
        },
        output_names=["force_x", "force_y", "force_z"],
        golden={"force_x": golden[0], "force_y": golden[1], "force_z": golden[2]},
    )


MD_KNN = Workload(
    name="md_knn",
    source=SOURCE_KNN,
    func_name="md_knn",
    arg_order=["force_x", "force_y", "force_z",
               "position_x", "position_y", "position_z", "NL"],
    make_data=make_data_knn,
    description=f"LJ forces, {N_ATOMS} atoms x {MAX_NEIGHBORS} neighbours",
)


# ---------------------------------------------------------------------------
B = 2          # cells per dimension
DENS = 4       # particles per cell
CELLS = B * B * B

SOURCE_GRID = f"""
void md_grid(double n_points[{CELLS * DENS * 3}], double forces[{CELLS * DENS * 3}],
             int n_valid[{CELLS}]) {{
  for (int b0x = 0; b0x < {B}; b0x++) {{
  for (int b0y = 0; b0y < {B}; b0y++) {{
  for (int b0z = 0; b0z < {B}; b0z++) {{
    int b0 = (b0x * {B} + b0y) * {B} + b0z;
    for (int b1x = b0x - 1; b1x < b0x + 2; b1x++) {{
    for (int b1y = b0y - 1; b1y < b0y + 2; b1y++) {{
    for (int b1z = b0z - 1; b1z < b0z + 2; b1z++) {{
      if (b1x >= 0 && b1x < {B} && b1y >= 0 && b1y < {B}
          && b1z >= 0 && b1z < {B}) {{
        int b1 = (b1x * {B} + b1y) * {B} + b1z;
        for (int p = 0; p < {DENS}; p++) {{
          double px = n_points[(b0 * {DENS} + p) * 3 + 0];
          double py = n_points[(b0 * {DENS} + p) * 3 + 1];
          double pz = n_points[(b0 * {DENS} + p) * 3 + 2];
          double fx = 0;
          double fy = 0;
          double fz = 0;
          for (int q = 0; q < {DENS}; q++) {{
            double qx = n_points[(b1 * {DENS} + q) * 3 + 0];
            double qy = n_points[(b1 * {DENS} + q) * 3 + 1];
            double qz = n_points[(b1 * {DENS} + q) * 3 + 2];
            double dx = px - qx;
            double dy = py - qy;
            double dz = pz - qz;
            double r2 = dx * dx + dy * dy + dz * dz;
            if (r2 > 0.000001) {{
              double r2inv = 1.0 / r2;
              double r6inv = r2inv * r2inv * r2inv;
              double pot = r6inv * ({LJ1} * r6inv - {LJ2});
              double force = r2inv * pot;
              fx += dx * force;
              fy += dy * force;
              fz += dz * force;
            }}
          }}
          forces[(b0 * {DENS} + p) * 3 + 0] += fx;
          forces[(b0 * {DENS} + p) * 3 + 1] += fy;
          forces[(b0 * {DENS} + p) * 3 + 2] += fz;
        }}
      }}
    }}
    }}
    }}
  }}
  }}
  }}
}}
"""


def make_data_grid(rng: np.random.Generator) -> WorkloadData:
    points = rng.uniform(0.0, 1.0, size=(CELLS, DENS, 3))
    # Spread cells apart so distances vary.
    for cx in range(B):
        for cy in range(B):
            for cz in range(B):
                cell = (cx * B + cy) * B + cz
                points[cell, :, 0] += cx
                points[cell, :, 1] += cy
                points[cell, :, 2] += cz
    forces = np.zeros_like(points)
    golden = np.zeros_like(points)
    for b0x in range(B):
     for b0y in range(B):
      for b0z in range(B):
        b0 = (b0x * B + b0y) * B + b0z
        for b1x in range(b0x - 1, b0x + 2):
         for b1y in range(b0y - 1, b0y + 2):
          for b1z in range(b0z - 1, b0z + 2):
            if 0 <= b1x < B and 0 <= b1y < B and 0 <= b1z < B:
                b1 = (b1x * B + b1y) * B + b1z
                for p in range(DENS):
                    px, py, pz = points[b0, p]
                    fx = fy = fz = 0.0
                    for q in range(DENS):
                        qx, qy, qz = points[b1, q]
                        dx, dy, dz = px - qx, py - qy, pz - qz
                        r2 = dx * dx + dy * dy + dz * dz
                        if r2 > 1e-6:
                            r2inv = 1.0 / r2
                            r6inv = r2inv * r2inv * r2inv
                            pot = r6inv * (LJ1 * r6inv - LJ2)
                            force = r2inv * pot
                            fx += dx * force
                            fy += dy * force
                            fz += dz * force
                    golden[b0, p, 0] += fx
                    golden[b0, p, 1] += fy
                    golden[b0, p, 2] += fz
    n_valid = np.full(CELLS, DENS, dtype=np.int32)
    return WorkloadData(
        inputs={"n_points": points, "forces": forces, "n_valid": n_valid},
        output_names=["forces"],
        golden={"forces": golden},
    )


MD_GRID = Workload(
    name="md_grid",
    source=SOURCE_GRID,
    func_name="md_grid",
    arg_order=["n_points", "forces", "n_valid"],
    make_data=make_data_grid,
    description=f"cell-grid LJ forces, {B}^3 cells x {DENS} particles",
)
