"""The `graph` build-pipeline stage: content-addressed lowering.

`BuildPipeline.graph` lowers an `ElaboratedDesign` to a `SimGraph`
artifact keyed by the module fingerprint + device config + profile (+
format version), so the artifact store amortizes lowering across runs
exactly like the frontend compile."""

import pickle

import pytest

from repro.build.artifact import ARTIFACT_KINDS, ElaboratedDesign
from repro.build.pipeline import STAGE_COUNTERS, BuildPipeline
from repro.build.store import ArtifactStore
from repro.engine import GRAPH_FORMAT_VERSION, compile_graph, graph_key
from repro.exec.context import SimContext
from repro.workloads import get_workload


def _design(unroll=1):
    ctx = SimContext(get_workload("gemm"), seed=7, verify=False,
                     memory="spm", unroll_factor=unroll)
    acc = ctx.build()
    return ElaboratedDesign(acc.unit.iface)


def test_graph_is_a_registered_artifact_kind():
    assert "graph" in ARTIFACT_KINDS


def test_graph_stage_produces_versioned_artifact():
    design = _design()
    artifact = BuildPipeline().graph(design)
    assert artifact.kind == "graph"
    assert artifact.meta["graph_version"] == GRAPH_FORMAT_VERSION
    assert artifact.key == graph_key(design)
    assert artifact.payload.n_nodes > 0


def test_graph_stage_hits_the_artifact_store():
    design = _design()
    store = ArtifactStore()
    pipeline = BuildPipeline(store=store)
    lowered_before = STAGE_COUNTERS.graph
    first = pipeline.graph(design)
    assert STAGE_COUNTERS.graph == lowered_before + 1
    second = pipeline.graph(design)
    # Served from the store: no second lowering.
    assert STAGE_COUNTERS.graph == lowered_before + 1
    assert store.hits >= 1
    assert second.key == first.key


def test_graph_key_tracks_the_lowered_module():
    assert graph_key(_design(unroll=1)) != graph_key(_design(unroll=4))


def test_sim_graph_pickles_and_rebuilds_evals():
    graph = compile_graph(_design())
    assert graph.evals is not None  # force the lazy build
    clone = pickle.loads(pickle.dumps(graph))
    assert clone.n_nodes == graph.n_nodes
    assert clone.arg_count == graph.arg_count
    # Eval closures are dropped on pickle and rebuilt lazily.
    assert len(clone.evals) == len(graph.evals)


def test_accelerator_reuses_store_cached_graph(tmp_path):
    store = ArtifactStore(tmp_path)
    for _ in range(2):
        ctx = SimContext(get_workload("gemm"), seed=7, verify=False,
                         engine="graph", memory="spm",
                         artifact_store=store)
        ctx.run()
        assert ctx.engine_used == "graph"
    assert store.hits >= 1


def test_graph_sweep_matches_dynamic_sweep():
    from repro.dse.sweep import sweep

    def configure(params):
        return {"memory": "spm", "spm_banks": params["banks"]}

    grid = {"banks": [2, 4]}
    runs = {}
    for engine in ("dynamic", "graph"):
        points = sweep(get_workload("gemm"), grid, configure, seed=7,
                       verify=False, engine=engine)
        runs[engine] = [(p.params, p.result.to_dict()) for p in points]
    assert runs["dynamic"] == runs["graph"]
