"""Evaluation semantics, including hypothesis properties.

These are the ground-truth semantics shared by the interpreter and the
runtime engine, so they get the heaviest property testing.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.semantics import (
    EvalError,
    bytes_to_value,
    eval_binop,
    eval_cast,
    eval_fcmp,
    eval_icmp,
    eval_intrinsic,
    round_float,
    to_signed,
    value_to_bytes,
    wrap_int,
)
from repro.ir.types import DOUBLE, FLOAT, IntType, I8, I32, I64, ptr_to

u32 = st.integers(min_value=0, max_value=2**32 - 1)
s32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
finite_doubles = st.floats(allow_nan=False, allow_infinity=False, width=64)


# -- integer arithmetic -----------------------------------------------------
@given(u32, u32)
def test_add_matches_c_semantics(a, b):
    assert eval_binop("add", I32, a, b) == (a + b) % 2**32


@given(u32, u32)
def test_sub_add_inverse(a, b):
    total = eval_binop("add", I32, a, b)
    assert eval_binop("sub", I32, total, b) == a


@given(u32, u32)
def test_mul_commutative(a, b):
    assert eval_binop("mul", I32, a, b) == eval_binop("mul", I32, b, a)


@given(s32, s32)
def test_sdiv_truncates_toward_zero(a, b):
    if b == 0:
        return
    result = to_signed(eval_binop("sdiv", I32, a & 0xFFFFFFFF, b & 0xFFFFFFFF), I32)
    expected = int(a / b)
    if expected == 2**31:  # INT_MIN / -1 wraps
        expected = -(2**31)
    assert result == expected


@given(s32, s32)
def test_srem_sign_follows_dividend(a, b):
    if b == 0:
        return
    result = to_signed(eval_binop("srem", I32, a & 0xFFFFFFFF, b & 0xFFFFFFFF), I32)
    assert result == math.fmod(a, b)


def test_division_by_zero_raises():
    for op in ("sdiv", "udiv", "srem", "urem"):
        with pytest.raises(EvalError):
            eval_binop(op, I32, 1, 0)


@given(u32, st.integers(min_value=0, max_value=31))
def test_shl_lshr(a, sh):
    shifted = eval_binop("shl", I32, a, sh)
    assert shifted == (a << sh) % 2**32
    assert eval_binop("lshr", I32, a, sh) == a >> sh


@given(s32, st.integers(min_value=0, max_value=31))
def test_ashr_preserves_sign(a, sh):
    result = to_signed(eval_binop("ashr", I32, a & 0xFFFFFFFF, sh), I32)
    assert result == a >> sh


@given(u32, u32)
def test_bitwise_ops(a, b):
    assert eval_binop("and", I32, a, b) == a & b
    assert eval_binop("or", I32, a, b) == a | b
    assert eval_binop("xor", I32, a, b) == a ^ b


# -- comparisons ---------------------------------------------------------------
@given(s32, s32)
def test_signed_compare(a, b):
    ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
    assert eval_icmp("slt", I32, ua, ub) == int(a < b)
    assert eval_icmp("sge", I32, ua, ub) == int(a >= b)
    assert eval_icmp("eq", I32, ua, ub) == int(a == b)


@given(u32, u32)
def test_unsigned_compare(a, b):
    assert eval_icmp("ult", I32, a, b) == int(a < b)
    assert eval_icmp("uge", I32, a, b) == int(a >= b)


@given(finite_doubles, finite_doubles)
def test_ordered_float_compare(a, b):
    assert eval_fcmp("olt", a, b) == int(a < b)
    assert eval_fcmp("oeq", a, b) == int(a == b)


def test_nan_comparisons():
    nan = float("nan")
    assert eval_fcmp("oeq", nan, 1.0) == 0
    assert eval_fcmp("une", nan, 1.0) == 1
    assert eval_fcmp("ord", nan, 1.0) == 0
    assert eval_fcmp("uno", nan, 1.0) == 1


# -- floats ------------------------------------------------------------------------
@given(finite_doubles, finite_doubles)
def test_fadd_matches_python(a, b):
    assert eval_binop("fadd", DOUBLE, a, b) == a + b


@given(st.floats(allow_nan=False, allow_infinity=False, width=32),
       st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_float32_ops_round(a, b):
    result = eval_binop("fmul", FLOAT, a, b)
    expected = np.float32(a) * np.float32(b)  # numpy applies binary32 rounding
    assert result == expected or (math.isnan(result) and math.isnan(expected))


def test_fdiv_by_zero_is_ieee():
    assert eval_binop("fdiv", DOUBLE, 1.0, 0.0) == math.inf
    assert eval_binop("fdiv", DOUBLE, -1.0, 0.0) == -math.inf
    assert math.isnan(eval_binop("fdiv", DOUBLE, 0.0, 0.0))


# -- casts --------------------------------------------------------------------------
@given(st.integers(min_value=-128, max_value=127))
def test_sext_zext(v):
    pattern = v & 0xFF
    assert to_signed(eval_cast("sext", I8, I32, pattern), I32) == v
    assert eval_cast("zext", I8, I32, pattern) == pattern


@given(u32)
def test_trunc_keeps_low_bits(v):
    assert eval_cast("trunc", I32, I8, v) == v & 0xFF


@given(s32)
def test_sitofp_fptosi_roundtrip(v):
    f = eval_cast("sitofp", I32, DOUBLE, v & 0xFFFFFFFF)
    assert f == float(v)
    back = eval_cast("fptosi", DOUBLE, I32, f)
    assert to_signed(back, I32) == v


def test_fptosi_of_nan_is_zero():
    assert eval_cast("fptosi", DOUBLE, I32, float("nan")) == 0
    assert eval_cast("fptosi", DOUBLE, I32, float("inf")) == 0


@given(finite_doubles)
def test_bitcast_double_i64_roundtrip(v):
    bits = eval_cast("bitcast", DOUBLE, I64, v)
    assert eval_cast("bitcast", I64, DOUBLE, bits) == v


# -- intrinsics ------------------------------------------------------------------
def test_intrinsics():
    assert eval_intrinsic("sqrt", DOUBLE, [9.0]) == 3.0
    assert eval_intrinsic("fabs", DOUBLE, [-2.5]) == 2.5
    assert eval_intrinsic("fmin", DOUBLE, [1.0, 2.0]) == 1.0
    assert eval_intrinsic("fmax", DOUBLE, [1.0, 2.0]) == 2.0
    assert math.isnan(eval_intrinsic("sqrt", DOUBLE, [-1.0]))
    with pytest.raises(EvalError):
        eval_intrinsic("nosuch", DOUBLE, [1.0])


# -- byte serialization ------------------------------------------------------------
@given(u32)
def test_int_bytes_roundtrip(v):
    assert bytes_to_value(value_to_bytes(v, I32), I32) == v


@given(finite_doubles)
def test_double_bytes_roundtrip(v):
    assert bytes_to_value(value_to_bytes(v, DOUBLE), DOUBLE) == v


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_float_bytes_roundtrip(v):
    assert bytes_to_value(value_to_bytes(v, FLOAT), FLOAT) == v


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_pointer_bytes_roundtrip(v):
    t = ptr_to(I32)
    assert bytes_to_value(value_to_bytes(v, t), t) == v


@given(st.integers(), st.integers(min_value=1, max_value=64))
def test_wrap_to_signed_consistency(v, bits):
    t = IntType(bits)
    wrapped = wrap_int(v, t)
    assert 0 <= wrapped <= t.mask
    signed = to_signed(wrapped, t)
    assert t.min_signed <= signed <= t.max_signed
    assert wrap_int(signed, t) == wrapped
