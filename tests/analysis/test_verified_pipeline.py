"""Verified pass pipelines: the broken pass must be named."""

import pytest

from repro.analysis.verified import (
    PassDivergenceError,
    VerifiedPassManager,
    differential_check,
    plan_inputs,
)
from repro.build import build_module
from repro.build.artifact import artifact_key
from repro.build.pipeline import resolve_spec
from repro.frontend import compile_c
from repro.ir.instructions import BinaryOp
from repro.passes.constfold import ConstantFold
from repro.passes.dce import DeadCodeElimination
from repro.passes.mem2reg import Mem2Reg
from repro.passes.pass_manager import FunctionPass
from repro.passes.pipeline import PipelineSpec
from repro.workloads import get_workload

SRC = """
void saxpy(double a[16], double b[16], double c[16]) {
  for (int i = 0; i < 16; i++) { c[i] = a[i] + 2.0 * b[i]; }
}
"""


class _EvilFold(FunctionPass):
    """Rewrites the first `fadd` into an `fsub` — and lies about changing."""

    name = "evilfold"

    def run(self, func):
        for inst in func.instructions():
            if isinstance(inst, BinaryOp) and inst.opcode == "fadd":
                inst.opcode = "fsub"
                return False  # structural checks alone would miss this
        return False


def test_clean_pipeline_passes():
    module = compile_c(SRC, "m")
    manager = VerifiedPassManager(
        [Mem2Reg(), ConstantFold(), DeadCodeElimination()], module=module)
    manager.run(module)
    assert not manager.unchecked
    assert manager.pass_timings  # per-pass timings recorded


def test_broken_pass_pinpointed():
    module = compile_c(SRC, "m")
    manager = VerifiedPassManager(
        [Mem2Reg(), _EvilFold(), DeadCodeElimination()], module=module)
    with pytest.raises(PassDivergenceError) as exc_info:
        manager.run(module)
    err = exc_info.value
    assert err.pass_name == "evilfold"
    assert err.func_name == "saxpy"
    assert "buffer differs" in err.detail or "return value" in err.detail


def test_unverified_manager_misses_the_miscompile():
    """The control: without differential checks the bug sails through."""
    module = compile_c(SRC, "m")
    spec = PipelineSpec.parse("mem2reg,dce")
    manager = spec.to_pass_manager(module=module)
    manager.add(_EvilFold())
    manager.run(module)  # structurally valid IR, silently wrong


def test_differential_check_on_identical_modules():
    before = compile_c(SRC, "m")
    after = compile_c(SRC, "m")
    assert differential_check(before, after, "saxpy") is None


def test_differential_check_detects_divergence():
    before = compile_c(SRC, "m")
    after = compile_c(SRC, "m")
    _EvilFold().run(after.get_function("saxpy"))
    detail = differential_check(before, after, "saxpy")
    assert detail is not None


def test_plan_inputs_deterministic():
    func = compile_c(SRC, "m").get_function("saxpy")
    assert plan_inputs(func) == plan_inputs(func)


def test_verify_each_excluded_from_cache_key():
    spec = PipelineSpec.parse("o1")
    verified = spec.with_verify_each()
    assert verified.verify_each
    assert spec == verified  # mode is not identity
    assert spec.canonical() == verified.canonical()
    assert (artifact_key(SRC, "m", spec)
            == artifact_key(SRC, "m", verified))


def test_resolve_spec_applies_verify_each():
    spec = resolve_spec(None, opt_level=1, unroll_factor=2, verify_each=True)
    assert spec.verify_each
    assert "unroll:2" in spec.canonical()


def test_build_module_verify_each_end_to_end():
    artifact = build_module(SRC, "m", verify_each=True)
    assert artifact.module.get_function("saxpy") is not None


def test_workload_build_verify_each():
    artifact = get_workload("gemm").build(verify_each=True)
    assert "gemm" in artifact.module.functions
