"""FaultInjector: arming, target resolution, each fault kind, determinism,
and the zero-overhead detached contract."""

import json

import pytest

from repro.exec import SimContext
from repro.faults import FaultConfigError, FaultInjector, FaultPlan
from repro.mem.dma import BlockDMA
from repro.mem.dram import DRAM
from repro.mem.spm import Scratchpad
from repro.mem.xbar import Crossbar
from repro.workloads import get_workload

GEMM_KW = dict(memory="spm", spm_bytes=1 << 16)

# A flip inside gemm_dse's staged input data: detected by verify().
FLIP_SPEC = "bit_flip@spm:access=1,addr=0x20000007,bit=6"


def _ctx(**kwargs):
    return SimContext(get_workload("gemm_dse"), **GEMM_KW, **kwargs)


# -- end-to-end kinds --------------------------------------------------------
def test_bit_flip_breaks_verification():
    ctx = _ctx(faults=FLIP_SPEC)
    with pytest.raises(AssertionError, match="mismatch"):
        ctx.run()
    assert ctx.fault_injector.injected, "fault never fired"
    record = ctx.fault_injector.injected[0]
    assert record["kind"] == "bit_flip"
    assert record["target"].endswith(".spm")
    assert record["addr"] == 0x20000007
    assert record["bit"] == 6


def test_finite_port_stall_slows_but_completes():
    baseline = _ctx().run()
    stalled = _ctx(faults="port_stall@memctrl:tick=50000,cycles=300").run()
    # The stall costs cycles but nothing is lost: data still verifies
    # (verify runs inside ctx.run) and the run terminates on its own.
    assert stalled.cycles > baseline.cycles


def test_mmr_corrupt_records_before_value():
    # Corrupting an argument register after the device latched its
    # pointers is harmless to this workload's dataflow — the point here
    # is the deterministic record of what was corrupted.
    ctx = _ctx(faults="mmr_corrupt@mmr:tick=90000,reg=1,mask=0x1")
    ctx.run()
    record = ctx.fault_injector.injected[0]
    assert record["kind"] == "mmr_corrupt"
    assert record["reg"] == 1
    assert record["mask"] == 0x1
    assert "before" in record


def test_faulty_runs_never_touch_the_cache(tmp_path):
    from repro.exec import RunCache

    cache = RunCache(tmp_path / "runs")
    clean = SimContext(get_workload("gemm_dse"), cache=cache, **GEMM_KW)
    clean.run()
    assert len(cache) == 1
    faulty = SimContext(get_workload("gemm_dse"), cache=cache,
                        faults="port_stall@memctrl:tick=50000,cycles=300",
                        **GEMM_KW)
    result = faulty.run()
    # Neither served from cache (different cycle count proves a real
    # simulation ran) nor written back to it.
    assert result.cycles > clean.last_result.cycles
    assert len(cache) == 1


# -- determinism -------------------------------------------------------------
def test_fault_free_run_is_byte_identical():
    baseline = _ctx().run()
    # faults=None, watchdog attached: neither may perturb the simulation.
    hardened = _ctx(faults=None, watchdog=True, timeout_s=60.0).run()
    assert json.dumps(baseline.to_dict(), sort_keys=True) == json.dumps(
        hardened.to_dict(), sort_keys=True
    )


def test_seed_resolved_fields_are_deterministic():
    # addr/bit left unspecified: resolved from the plan seed at attach.
    plan = FaultPlan.coerce("bit_flip@spm:access=1")
    plan.seed = 123
    records = []
    for __ in range(2):
        ctx = _ctx(faults=plan)
        try:
            ctx.run()
        except AssertionError:
            pass  # the flip may or may not land on checked data
        records.append(ctx.fault_injector.injected)
        ctx.reset()
    assert records[0] == records[1]
    assert records[0][0]["kind"] == "bit_flip"


# -- unit-level: DMA faults --------------------------------------------------
def _dma_fabric(system):
    xbar = Crossbar("xbar", system)
    dram = DRAM("dram", system, base=0x8000_0000, size=1 << 16)
    spm = Scratchpad("spm", system, base=0x1000, size=4096)
    xbar.attach_slave(dram.port, dram.range, label="dram")
    xbar.attach_slave(spm.make_port(), spm.range, label="spm")
    dma = BlockDMA("dma", system, burst_bytes=64)
    dma.port.bind(xbar.slave_port("dma"))
    return dram, spm, dma


def test_dma_drop_completes_without_copying(system):
    dram, spm, dma = _dma_fabric(system)
    injector = FaultInjector("dma_drop@dma:access=1").attach(system)
    payload = bytes(range(256))
    dram.image.write(0x8000_0000, payload)
    done = []
    dma.start(0x8000_0000, 0x1000, 256, on_done=lambda: done.append(True))
    system.run()
    # Silent data loss: completion fired, destination untouched.
    assert done
    assert not dma.busy
    assert spm.image.read(0x1000, 256) == bytes(256)
    assert injector.injected[0]["kind"] == "dma_drop"


def test_dma_delay_postpones_but_still_copies(system):
    dram, spm, dma = _dma_fabric(system)
    FaultInjector("dma_delay@dma:access=1,cycles=500").attach(system)
    payload = bytes(range(64))
    dram.image.write(0x8000_0000, payload)
    dma.start(0x8000_0000, 0x1000, 64)
    system.run()
    assert spm.image.read(0x1000, 64) == payload
    # The second transfer (fault consumed) is undisturbed.
    dram.image.write(0x8000_0000, payload[::-1])
    dma.start(0x8000_0000, 0x2000 - 64, 64)
    system.run()
    assert spm.image.read(0x2000 - 64, 64) == payload[::-1]


def test_dma_delay_costs_the_configured_cycles(system):
    import repro.sim.simobject as so

    times = {}
    for label, spec in (("clean", None), ("delayed",
                                          "dma_delay@dma:access=1,cycles=400")):
        sys2 = so.System(f"s_{label}")
        dram, spm, dma = _dma_fabric(sys2)
        if spec is not None:
            FaultInjector(spec).attach(sys2)
        dram.image.write(0x8000_0000, bytes(64))
        dma.start(0x8000_0000, 0x1000, 64)
        sys2.run()
        times[label] = sys2.cur_tick
    assert times["delayed"] > times["clean"]


# -- attach / resolution errors ---------------------------------------------
def test_unknown_target_raises(system):
    Scratchpad("spm", system, base=0x1000, size=64)
    with pytest.raises(FaultConfigError, match="no SimObject matches"):
        FaultInjector("bit_flip@nope:tick=0").attach(system)


def test_mmr_corrupt_rejects_non_mmr_target(system):
    Scratchpad("spm", system, base=0x1000, size=64)
    with pytest.raises(FaultConfigError, match="not an MMRFile"):
        FaultInjector("mmr_corrupt@spm:tick=0").attach(system)


def test_double_attach_rejected(system):
    Scratchpad("spm", system, base=0x1000, size=64)
    injector = FaultInjector("bit_flip@spm:tick=0,addr=0x1000,bit=0")
    injector.attach(system)
    with pytest.raises(FaultConfigError, match="already attached"):
        injector.attach(system)


def test_detach_clears_every_hook(system):
    spm = Scratchpad("spm", system, base=0x1000, size=64)
    injector = FaultInjector("bit_flip@spm:access=1,addr=0x1000,bit=0")
    injector.attach(system)
    assert spm._finj is injector
    injector.detach()
    assert spm._finj is None
