"""LLVM Interface: static elaboration and static metrics.

Mirrors Fig. 2 of the paper: takes the compiled IR, the hardware
profile, and the device config; extracts the static CDFG; maps
instructions to virtual functional units and registers; and produces
the static power/area baseline.  The resulting object parameterizes
both the runtime engine and the power model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cdfg import StaticCDFG
from repro.core.config import DeviceConfig
from repro.hw.power import AreaReport
from repro.hw.profile import HardwareProfile
from repro.ir.module import Function, Module


@dataclass
class StaticMetrics:
    fu_leakage_mw: float
    register_leakage_mw: float
    fu_area_um2: float
    register_area_um2: float
    register_bits: int
    fu_counts: dict[str, int]


class LLVMInterface:
    """Statically elaborated accelerator model."""

    def __init__(
        self,
        module: Module,
        func_name: str,
        profile: HardwareProfile,
        config: DeviceConfig,
    ) -> None:
        config.validate()
        self.module = module
        self.func: Function = module.get_function(func_name)
        self.profile = profile
        self.config = config
        self.cdfg = StaticCDFG(self.func, fu_limits=config.fu_limits)
        self.static = self._static_metrics()

    # ------------------------------------------------------------------
    def latency_for_class(self, fu_class: str) -> int:
        if fu_class in self.config.latency_overrides:
            return self.config.latency_overrides[fu_class]
        spec = self.profile.spec_for(fu_class)
        return spec.latency if spec is not None else 0

    def _static_metrics(self) -> StaticMetrics:
        fu_leakage = 0.0
        fu_area = 0.0
        for fu_class, count in self.cdfg.fu_counts.items():
            spec = self.profile.spec_for(fu_class)
            if spec is None:
                continue
            fu_leakage += spec.leakage_mw * count
            fu_area += spec.area_um2 * count
        bits = self.cdfg.register_bits
        register = self.profile.register
        return StaticMetrics(
            fu_leakage_mw=fu_leakage,
            register_leakage_mw=bits * register.leakage_mw_per_bit,
            fu_area_um2=fu_area,
            register_area_um2=bits * register.area_um2_per_bit,
            register_bits=bits,
            fu_counts=dict(self.cdfg.fu_counts),
        )

    def area_report(self, spm_um2: float = 0.0) -> AreaReport:
        return AreaReport(
            functional_units_um2=self.static.fu_area_um2,
            registers_um2=self.static.register_area_um2,
            spm_um2=spm_um2,
        )

    def summary(self) -> dict:
        info = self.cdfg.summary()
        info.update(
            {
                "fu_leakage_mw": self.static.fu_leakage_mw,
                "fu_area_um2": self.static.fu_area_um2,
                "register_area_um2": self.static.register_area_um2,
            }
        )
        return info
