"""FaultPlan / FaultEvent / faultspec parsing."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultConfigError,
    FaultEvent,
    FaultPlan,
    parse_faultspec,
)


# -- events ------------------------------------------------------------------
def test_event_requires_exactly_one_trigger():
    with pytest.raises(FaultConfigError):
        FaultEvent("bit_flip", "spm")  # no trigger
    with pytest.raises(FaultConfigError):
        FaultEvent("bit_flip", "spm", at_tick=5, after_accesses=2)  # both
    FaultEvent("bit_flip", "spm", at_tick=5)
    FaultEvent("bit_flip", "spm", after_accesses=2)


def test_event_validation():
    with pytest.raises(FaultConfigError):
        FaultEvent("melt", "spm", at_tick=0)
    with pytest.raises(FaultConfigError):
        FaultEvent("bit_flip", "", at_tick=0)
    with pytest.raises(FaultConfigError):
        FaultEvent("bit_flip", "spm", at_tick=-1)
    with pytest.raises(FaultConfigError):
        FaultEvent("bit_flip", "spm", after_accesses=0)
    with pytest.raises(FaultConfigError):
        FaultEvent("bit_flip", "spm", at_tick=0, bit=8)
    with pytest.raises(FaultConfigError):
        FaultEvent("port_stall", "memctrl", at_tick=0, cycles=0)
    with pytest.raises(FaultConfigError):
        FaultEvent("bit_flip", "spm", at_tick=0, count=0)


def test_every_kind_is_constructible():
    for kind in FAULT_KINDS:
        event = FaultEvent(kind, "x", at_tick=1)
        assert event.kind == kind


# -- faultspec grammar -------------------------------------------------------
def test_parse_faultspec_full():
    event = parse_faultspec("bit_flip@spm:access=1,addr=0x20000007,bit=6")
    assert event.kind == "bit_flip"
    assert event.target == "spm"
    assert event.after_accesses == 1
    assert event.addr == 0x20000007
    assert event.bit == 6
    assert event.at_tick is None


def test_parse_faultspec_tick_alias_and_hex():
    event = parse_faultspec("port_stall@memctrl:tick=0x100,cycles=200")
    assert event.at_tick == 0x100
    assert event.cycles == 200


def test_parse_faultspec_rejects_garbage():
    for bad in ("bit_flip", "bit_flip@", "@spm:tick=1",
                "bit_flip@spm:tick", "bit_flip@spm:wat=1",
                "bit_flip@spm:tick=banana"):
        with pytest.raises(FaultConfigError):
            parse_faultspec(bad)


def test_describe_round_trips_through_parse():
    event = parse_faultspec("mmr_corrupt@mmr:tick=100,reg=1,mask=0xff")
    assert parse_faultspec(event.describe()) == event


# -- plans -------------------------------------------------------------------
def test_plan_coerce_forms():
    assert FaultPlan.coerce(None) is None
    plan = FaultPlan(events=[FaultEvent("mem_drop", "memctrl", at_tick=0)], seed=3)
    assert FaultPlan.coerce(plan) is plan
    event = FaultEvent("mem_drop", "memctrl", at_tick=0)
    assert FaultPlan.coerce(event).events == [event]
    assert FaultPlan.coerce("mem_drop@memctrl:tick=0").events[0].kind == "mem_drop"
    mixed = FaultPlan.coerce([event, "bit_flip@spm:access=1"])
    assert len(mixed.events) == 2
    with pytest.raises(FaultConfigError):
        FaultPlan.coerce(42)


def test_plan_truthiness_and_parse():
    assert not FaultPlan()
    plan = FaultPlan.parse(["mem_drop@memctrl:tick=0"], seed=11)
    assert plan
    assert plan.seed == 11
    assert plan.describe() == ["mem_drop@memctrl:tick=0"]
