"""FFT (MachSuite fft/strided), scaled to 64 points.

In-place iterative radix-2 with strided butterflies and a twiddle
table, exactly mirroring the MachSuite kernel structure (including the
``odd |= span`` index trick and the data-dependent twiddle branch).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload, WorkloadData

SIZE = 64
HALF = SIZE // 2

SOURCE = f"""
void fft(double real[{SIZE}], double img[{SIZE}],
         double real_twid[{HALF}], double img_twid[{HALF}]) {{
  int log = 0;
  for (int span = {HALF}; span > 0; span = span >> 1) {{
    for (int odd = span; odd < {SIZE}; odd++) {{
      odd |= span;
      int even = odd ^ span;

      double temp = real[even] + real[odd];
      real[odd] = real[even] - real[odd];
      real[even] = temp;

      temp = img[even] + img[odd];
      img[odd] = img[even] - img[odd];
      img[even] = temp;

      int rootindex = (even << log) & {SIZE - 1};
      if (rootindex != 0) {{
        temp = real_twid[rootindex] * real[odd] - img_twid[rootindex] * img[odd];
        img[odd] = real_twid[rootindex] * img[odd] + img_twid[rootindex] * real[odd];
        real[odd] = temp;
      }}
    }}
    log++;
  }}
}}
"""


def golden_fft(real: np.ndarray, img: np.ndarray,
               real_twid: np.ndarray, img_twid: np.ndarray) -> None:
    """Literal Python translation of the kernel (operates in place)."""
    log = 0
    span = HALF
    while span > 0:
        odd = span
        while odd < SIZE:
            odd |= span
            even = odd ^ span

            temp = real[even] + real[odd]
            real[odd] = real[even] - real[odd]
            real[even] = temp

            temp = img[even] + img[odd]
            img[odd] = img[even] - img[odd]
            img[even] = temp

            rootindex = (even << log) & (SIZE - 1)
            if rootindex != 0:
                temp = real_twid[rootindex] * real[odd] - img_twid[rootindex] * img[odd]
                img[odd] = real_twid[rootindex] * img[odd] + img_twid[rootindex] * real[odd]
                real[odd] = temp
            odd += 1
        span >>= 1
        log += 1


def make_data(rng: np.random.Generator) -> WorkloadData:
    real = rng.uniform(-1.0, 1.0, SIZE)
    img = rng.uniform(-1.0, 1.0, SIZE)
    angles = -2.0 * np.pi * np.arange(HALF) / SIZE
    real_twid = np.cos(angles)
    img_twid = np.sin(angles)
    golden_real = real.copy()
    golden_img = img.copy()
    golden_fft(golden_real, golden_img, real_twid, img_twid)
    return WorkloadData(
        inputs={
            "real": real, "img": img,
            "real_twid": real_twid, "img_twid": img_twid,
        },
        output_names=["real", "img"],
        golden={"real": golden_real, "img": golden_img},
    )


WORKLOAD = Workload(
    name="fft",
    source=SOURCE,
    func_name="fft",
    arg_order=["real", "img", "real_twid", "img_twid"],
    make_data=make_data,
    description=f"{SIZE}-point in-place strided radix-2 FFT",
)
