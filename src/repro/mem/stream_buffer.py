"""Stream buffer: an AXI-Stream-like FIFO channel.

Connects a producer device to a consumer device with a two-way
handshake: pushes fail when the FIFO is full, pops fail when it is
empty, and each side can register a callback to be notified when space
or data becomes available.  This is the primitive behind the paper's
third CNN scenario (direct accelerator-to-accelerator pipelining,
Fig. 16c), which trace-based simulators cannot express.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.sim.clock import ClockDomain
from repro.sim.simobject import SimObject, System


class StreamBuffer(SimObject):
    def __init__(
        self,
        name: str,
        system: System,
        capacity_tokens: int = 16,
        token_bytes: int = 8,
        clock: Optional[ClockDomain] = None,
    ) -> None:
        super().__init__(name, system, clock)
        if capacity_tokens <= 0:
            raise ValueError("stream buffer capacity must be positive")
        self.capacity = capacity_tokens
        self.token_bytes = token_bytes
        self._fifo: deque[bytes] = deque()
        self._space_waiters: list[Callable[[], None]] = []
        self._data_waiters: list[Callable[[], None]] = []
        self.stat_pushes = self.stats.scalar("pushes")
        self.stat_pops = self.stats.scalar("pops")
        self.stat_push_stalls = self.stats.scalar("push_stalls")
        self.stat_pop_stalls = self.stats.scalar("pop_stalls")
        self.stat_max_occupancy = self.stats.scalar("max_occupancy")

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self._fifo)

    @property
    def full(self) -> bool:
        return len(self._fifo) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._fifo

    def try_push(self, token: bytes) -> bool:
        """Producer handshake: returns False (and records a stall) if full."""
        if len(token) != self.token_bytes:
            raise ValueError(
                f"{self.name}: token of {len(token)}B != configured {self.token_bytes}B"
            )
        if self.full:
            self.stat_push_stalls.inc()
            if self._thub is not None:
                self.trace_emit("mem", "push_stall", args={"occupancy": len(self._fifo)})
            return False
        self._fifo.append(bytes(token))
        self.stat_pushes.inc()
        if len(self._fifo) > self.stat_max_occupancy.value():
            self.stat_max_occupancy.set(len(self._fifo))
        self._notify(self._data_waiters)
        return True

    def try_pop(self) -> Optional[bytes]:
        """Consumer handshake: returns None (and records a stall) if empty."""
        if self.empty:
            self.stat_pop_stalls.inc()
            if self._thub is not None:
                self.trace_emit("mem", "pop_stall", args={"occupancy": 0})
            return None
        token = self._fifo.popleft()
        self.stat_pops.inc()
        self._notify(self._space_waiters)
        return token

    def on_space(self, callback: Callable[[], None]) -> None:
        """Notify ``callback`` once when space becomes available."""
        self._space_waiters.append(callback)

    def on_data(self, callback: Callable[[], None]) -> None:
        """Notify ``callback`` once when a token becomes available."""
        self._data_waiters.append(callback)

    def _notify(self, waiters: list[Callable[[], None]]) -> None:
        if not waiters:
            return
        pending, waiters[:] = list(waiters), []
        for callback in pending:
            # Deliver on the next clock edge (handshake takes a cycle).
            self.eventq.schedule_callback(
                callback, self.clock_edge(1), name=f"{self.name}.notify"
            )
