"""MMRs and the communications interface."""

import struct

import pytest

from repro.core.comm_interface import CommInterface
from repro.core.mmr import ARGS_OFFSET, CTRL_DONE, CTRL_IRQ_EN, CTRL_START, MMRFile
from repro.ir.types import DOUBLE, FLOAT, I32, ptr_to
from repro.sim.packet import read_packet, write_packet
from repro.sim.ports import MasterPort


def test_mmr_device_side_access(system):
    mmr = MMRFile("mmr", system, base=0x1000_0000, num_args=4)
    mmr.set_arg(2, 0xDEADBEEF)
    assert mmr.arg(2) == 0xDEADBEEF
    with pytest.raises(IndexError):
        mmr.arg(4)


def test_mmr_bus_write_triggers_hook(system):
    writes = []
    mmr = MMRFile("mmr", system, base=0x1000_0000,
                  on_write=lambda off, val: writes.append((off, val)))
    responses = []
    master = MasterPort("m", recv_timing_resp=responses.append)
    master.bind(mmr.pio)
    master.send_timing_req(
        write_packet(0x1000_0000 + ARGS_OFFSET, (77).to_bytes(8, "little"))
    )
    system.run()
    assert writes == [(ARGS_OFFSET, 77)]
    assert mmr.arg(0) == 77
    assert len(responses) == 1


def test_mmr_bus_read(system):
    mmr = MMRFile("mmr", system, base=0x1000_0000)
    mmr.control = CTRL_DONE
    responses = []
    master = MasterPort("m", recv_timing_resp=responses.append)
    master.bind(mmr.pio)
    master.send_timing_req(read_packet(0x1000_0000, 8))
    system.run()
    assert int.from_bytes(responses[0].data, "little") == CTRL_DONE


def test_set_done_clears_start(system):
    mmr = MMRFile("mmr", system, base=0)
    mmr.control = CTRL_START | CTRL_IRQ_EN
    mmr.set_done()
    assert mmr.control & CTRL_DONE
    assert not mmr.control & CTRL_START
    assert mmr.control & CTRL_IRQ_EN


def test_out_of_range_access_rejected(system):
    mmr = MMRFile("mmr", system, base=0x1000, num_args=1)
    master = MasterPort("m", recv_timing_resp=lambda p: None)
    master.bind(mmr.pio)
    with pytest.raises(ValueError):
        master.send_functional(read_packet(0x2000, 8))


def test_comm_interface_start_hook(system):
    comm = CommInterface("comm", system, mmr_base=0x1000_0000)
    started = []
    comm.on_start(lambda: started.append(True))
    comm.mmr._apply_write(0, CTRL_START.to_bytes(8, "little"))
    assert started == [True]
    # Non-control writes do not trigger.
    comm.mmr._apply_write(ARGS_OFFSET, CTRL_START.to_bytes(8, "little"))
    assert len(started) == 1


def test_argument_marshalling_roundtrip(system):
    comm = CommInterface("comm", system, mmr_base=0x1000_0000)
    types = [ptr_to(DOUBLE), I32, DOUBLE, FLOAT]
    values = [0x2000_0000, -5 & 0xFFFFFFFF, 3.25, 1.5]
    for i, (type_, value) in enumerate(zip(types, values)):
        comm.mmr.set_arg(i, CommInterface.encode_argument(value, type_))
    decoded = comm.read_arguments(types)
    assert decoded[0] == 0x2000_0000
    assert decoded[1] == (-5 & 0xFFFFFFFF)
    assert decoded[2] == 3.25
    assert decoded[3] == 1.5


def test_interrupt_raised_to_all_handlers(system):
    comm = CommInterface("comm", system, mmr_base=0x1000_0000)
    hits = []
    comm.connect_irq(lambda: hits.append("a"))
    comm.connect_irq(lambda: hits.append("b"))
    comm.raise_interrupt()
    assert hits == ["a", "b"]
