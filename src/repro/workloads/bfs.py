"""BFS (MachSuite bfs/queue), scaled to a 32-node random graph.

Queue-based breadth-first search writing per-node levels.  Control is
entirely data-dependent (frontier contents), which is why it is the
extreme case in the paper's Table IV simulation-time comparison.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.workloads.base import Workload, WorkloadData

N_NODES = 32
N_EDGES = 128

SOURCE = f"""
void bfs(int nodes_begin[{N_NODES}], int nodes_end[{N_NODES}],
         int edges[{N_EDGES}], int start, int level[{N_NODES}],
         int queue[{N_NODES}]) {{
  int q_in = 0;
  int q_out = 0;
  level[start] = 0;
  queue[q_in] = start;
  q_in = 1;
  while (q_out < q_in) {{
    int n = queue[q_out];
    q_out++;
    int begin = nodes_begin[n];
    int end = nodes_end[n];
    for (int e = begin; e < end; e++) {{
      int child = edges[e];
      if (level[child] == 127) {{
        level[child] = level[n] + 1;
        queue[q_in] = child;
        q_in++;
      }}
    }}
  }}
}}
"""


def make_data(rng: np.random.Generator) -> WorkloadData:
    # Random graph in CSR-ish (begin/end per node) form.
    targets = rng.integers(0, N_NODES, N_EDGES).astype(np.int32)
    counts = np.bincount(rng.integers(0, N_NODES, N_EDGES), minlength=N_NODES)
    begin = np.zeros(N_NODES, dtype=np.int32)
    begin[1:] = np.cumsum(counts)[:-1].astype(np.int32)
    end = (begin + counts).astype(np.int32)
    start = 0
    level = np.full(N_NODES, 127, dtype=np.int32)

    golden_level = level.copy()
    golden_level[start] = 0
    queue = deque([start])
    order = [start]
    while queue:
        n = queue.popleft()
        for e in range(begin[n], end[n]):
            child = int(targets[e])
            if golden_level[child] == 127:
                golden_level[child] = golden_level[n] + 1
                queue.append(child)
                order.append(child)
    golden_queue = np.zeros(N_NODES, dtype=np.int32)
    golden_queue[: len(order)] = order

    return WorkloadData(
        inputs={
            "nodes_begin": begin, "nodes_end": end, "edges": targets,
            "level": level, "queue": np.zeros(N_NODES, dtype=np.int32),
        },
        output_names=["level"],
        golden={"level": golden_level, "queue": golden_queue},
        scalars={"start": start},
    )


WORKLOAD = Workload(
    name="bfs",
    source=SOURCE,
    func_name="bfs",
    arg_order=["nodes_begin", "nodes_end", "edges", "start", "level", "queue"],
    make_data=make_data,
    description=f"queue BFS over a {N_NODES}-node random graph",
)
