"""IR verifier.

Checks the structural invariants the rest of the system depends on:
well-terminated blocks, phi/predecessor agreement, type-correct
operands, and SSA dominance of definitions over uses.
"""

from __future__ import annotations

from repro.ir.dominance import DominatorTree
from repro.ir.instructions import Branch, Call, Phi, Ret
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Argument, Constant, Instruction, Value
from repro.ir.instructions import BlockRef


class VerifierError(ValueError):
    pass


def verify_module(module: Module) -> None:
    for func in module:
        verify_function(func, module)


def verify_function(func: Function, module: Module | None = None) -> None:
    if not func.blocks:
        raise VerifierError(f"{func.name}: function has no blocks")
    _check_blocks(func)
    _check_names(func)
    _check_phis(func)
    _check_dominance(func)
    if module is not None:
        _check_calls(func, module)


def _check_blocks(func: Function) -> None:
    names = set()
    for block in func.blocks:
        if block.name in names:
            raise VerifierError(f"{func.name}: duplicate block name '{block.name}'")
        names.add(block.name)
        if not block.instructions:
            raise VerifierError(f"{func.name}.{block.name}: empty block")
        if not block.instructions[-1].is_terminator:
            raise VerifierError(f"{func.name}.{block.name}: missing terminator")
        for inst in block.instructions[:-1]:
            if inst.is_terminator:
                raise VerifierError(
                    f"{func.name}.{block.name}: terminator in the middle of block"
                )
        for inst in block.instructions:
            if inst.parent is not block:
                raise VerifierError(
                    f"{func.name}.{block.name}: instruction with stale parent"
                )
        term = block.terminator
        if isinstance(term, Branch):
            cond = term.condition
            if cond is not None and not (
                cond.type.is_int and cond.type.bits == 1
            ):
                raise VerifierError(
                    f"{func.name}.{block.name}: branch condition must be i1, "
                    f"got {cond.type}"
                )
            for target in term.targets():
                if target not in func.blocks:
                    raise VerifierError(
                        f"{func.name}.{block.name}: branch to foreign block '{target.name}'"
                    )
        elif isinstance(term, Ret):
            expected = func.return_type
            got = term.return_value.type if term.return_value is not None else None
            if expected.is_void and got is not None:
                raise VerifierError(f"{func.name}: ret with value in void function")
            if not expected.is_void and got != expected:
                raise VerifierError(
                    f"{func.name}: ret type {got} does not match {expected}"
                )


def _check_names(func: Function) -> None:
    seen: set[str] = {a.name for a in func.args}
    if len(seen) != len(func.args):
        raise VerifierError(f"{func.name}: duplicate argument names")
    for inst in func.instructions():
        if inst.produces_value:
            if not inst.name:
                raise VerifierError(f"{func.name}: unnamed value-producing {inst.opcode}")
            if inst.name in seen:
                raise VerifierError(f"{func.name}: duplicate SSA name '%{inst.name}'")
            seen.add(inst.name)


def _check_phis(func: Function) -> None:
    pred_map = func.predecessor_map()
    for block in func.blocks:
        preds = pred_map[block]
        seen_non_phi = False
        for inst in block.instructions:
            if isinstance(inst, Phi):
                if block is func.entry:
                    raise VerifierError(
                        f"{func.name}.{block.name}: phi {inst.ref} in entry "
                        f"block (the entry has no predecessors)"
                    )
                if seen_non_phi:
                    raise VerifierError(
                        f"{func.name}.{block.name}: phi after non-phi instruction"
                    )
                incoming_blocks = [b for __, b in inst.incoming]
                if set(map(id, incoming_blocks)) != set(map(id, preds)) or len(
                    incoming_blocks
                ) != len(preds):
                    raise VerifierError(
                        f"{func.name}.{block.name}: phi {inst.ref} incoming blocks "
                        f"{[b.name for b in incoming_blocks]} != predecessors "
                        f"{[b.name for b in preds]}"
                    )
            else:
                seen_non_phi = True


def _check_dominance(func: Function) -> None:
    dt = DominatorTree(func)
    positions: dict[Instruction, tuple[BasicBlock, int]] = {}
    for block in func.blocks:
        for i, inst in enumerate(block.instructions):
            positions[inst] = (block, i)

    def check_use(user: Instruction, operand: Value, use_block: BasicBlock, use_index: int) -> None:
        if isinstance(operand, (Constant, Argument, BlockRef)):
            return
        if not isinstance(operand, Instruction):
            raise VerifierError(f"{func.name}: bad operand kind {operand!r}")
        if operand not in positions:
            raise VerifierError(
                f"{func.name}: {user.opcode} uses value {operand.ref} not in function"
            )
        def_block, def_index = positions[operand]
        if def_block is use_block:
            if def_index >= use_index:
                raise VerifierError(
                    f"{func.name}.{use_block.name}: {operand.ref} used before definition"
                )
        elif not dt.strictly_dominates(def_block, use_block):
            raise VerifierError(
                f"{func.name}: definition of {operand.ref} in '{def_block.name}' does not "
                f"dominate use in '{use_block.name}'"
            )

    for block in func.blocks:
        if not dt.is_reachable(block):
            continue
        for i, inst in enumerate(block.instructions):
            if isinstance(inst, Phi):
                for value, pred in inst.incoming:
                    if isinstance(value, Instruction):
                        if value not in positions:
                            raise VerifierError(
                                f"{func.name}: phi uses value {value.ref} not in function"
                            )
                        def_block, __ = positions[value]
                        if dt.is_reachable(pred) and not dt.dominates(def_block, pred):
                            raise VerifierError(
                                f"{func.name}.{block.name}: phi incoming {value.ref} does "
                                f"not dominate predecessor '{pred.name}'"
                            )
            else:
                for operand in inst.operands:
                    check_use(inst, operand, block, i)


def _check_calls(func: Function, module: Module) -> None:
    for inst in func.instructions():
        if isinstance(inst, Call) and not inst.is_intrinsic:
            if inst.callee not in module.functions:
                raise VerifierError(
                    f"{func.name}: call to unknown function '@{inst.callee}'"
                )
            callee = module.functions[inst.callee]
            if len(callee.args) != len(inst.operands):
                raise VerifierError(
                    f"{func.name}: call to @{inst.callee} with wrong arity"
                )
            for i, (param, actual) in enumerate(zip(callee.args, inst.operands)):
                if actual.type != param.type:
                    raise VerifierError(
                        f"{func.name}: call to @{inst.callee} argument {i} "
                        f"('{param.name}') expects {param.type}, "
                        f"got {actual.type}"
                    )
            if inst.type != callee.return_type:
                raise VerifierError(
                    f"{func.name}: call to @{inst.callee} typed {inst.type} "
                    f"but callee returns {callee.return_type}"
                )
