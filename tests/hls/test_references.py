"""HLS scheduler, RTL reference, FPGA platform model."""

import numpy as np
import pytest

from repro.core.config import DeviceConfig
from repro.frontend import compile_c
from repro.hls import (
    FPGAPlatformModel,
    hls_cycle_estimate,
    rtl_area_reference,
    rtl_power_reference,
)
from repro.hw.power import AreaReport, PowerReport
from repro.ir.memory import MemoryImage
from repro.system.soc import StandaloneAccelerator
from repro.workloads import get_workload


def _estimate(workload_name, config=None, seed=7):
    w = get_workload(workload_name)
    module = compile_c(w.source, w.func_name)
    data = w.make_data(np.random.default_rng(seed))
    mem = MemoryImage(1 << 17, base=0x10000)
    args = []
    for name in w.arg_order:
        if name in data.inputs:
            args.append(mem.alloc_array(np.ascontiguousarray(data.inputs[name])))
        else:
            args.append(data.scalars[name])
    from repro.hw.default_profile import default_profile

    return hls_cycle_estimate(module, w.func_name, args, mem,
                              default_profile(), config or DeviceConfig())


def test_schedule_has_blocks_and_visits():
    sched = _estimate("gemm")
    assert sched.total_cycles > 0
    assert sched.blocks
    assert sum(sched.block_visits.values()) > 0
    for block in sched.blocks.values():
        assert block.latency >= 1
        assert block.ii >= 1
        assert block.control_delay >= 1


def test_resource_limits_raise_estimate():
    free = _estimate("gemm")
    limited = _estimate("gemm", DeviceConfig(read_ports=1, write_ports=1))
    assert limited.total_cycles >= free.total_cycles


def test_estimate_tracks_simulation_within_tolerance(rng):
    """The Fig. 10 relationship: SALAM vs the HLS reference within ~10%
    per benchmark on the default configuration."""
    for name in ("gemm", "fft", "stencil2d"):
        w = get_workload(name)
        acc = StandaloneAccelerator(w.source, w.func_name, memory="spm",
                                    spm_bytes=1 << 16)
        data = w.make_data(np.random.default_rng(7))
        args, __ = w.stage(acc, data)
        measured = acc.run(args).cycles
        estimated = _estimate(name).total_cycles
        error = abs(measured - estimated) / estimated
        assert error < 0.10, f"{name}: salam={measured} hls={estimated}"


def test_cosimulation_is_side_effect_free():
    w = get_workload("fft")
    module = compile_c(w.source, w.func_name)
    data = w.make_data(np.random.default_rng(7))
    mem = MemoryImage(1 << 17, base=0x10000)
    args = [mem.alloc_array(np.ascontiguousarray(data.inputs[n])) for n in w.arg_order]
    before = mem.read(mem.base, 1 << 17)
    from repro.hw.default_profile import default_profile

    hls_cycle_estimate(module, w.func_name, args, mem, default_profile())
    assert mem.read(mem.base, 1 << 17) == before


# -- RTL reference ----------------------------------------------------------
def _sample_power():
    return PowerReport(
        runtime_ns=10000.0, fu_dynamic_pj=5000.0, register_dynamic_pj=800.0,
        spm_read_pj=1000.0, spm_write_pj=500.0,
        fu_leakage_mw=0.4, register_leakage_mw=0.05, spm_leakage_mw=0.1,
    )


def test_rtl_power_reference_slightly_above_model(profile):
    salam = _sample_power()
    regular = rtl_power_reference(salam, {"fp_add": 4, "fp_mul": 4})
    assert regular > salam.total_mw
    assert regular < salam.total_mw * 1.15  # single-digit-% overhead


def test_irregular_datapaths_show_larger_power_gap(profile):
    salam = _sample_power()
    regular = rtl_power_reference(salam, {"fp_add": 8, "fp_mul": 8})
    irregular = rtl_power_reference(salam, {"mux": 8, "fp_cmp": 6, "fp_div": 2})
    assert irregular > regular  # the paper's MD/NW observation


def test_rtl_area_reference_adds_interconnect(profile):
    area = AreaReport(functional_units_um2=50000.0, registers_um2=10000.0)
    ref = rtl_area_reference(area, {"fp_add": 8, "fp_mul": 8}, 4096, profile)
    assert ref > area.total_um2
    assert ref < area.total_um2 * 1.25


# -- FPGA platform model --------------------------------------------------------
def test_fpga_compute_time_scales_with_cycles():
    fpga = FPGAPlatformModel()
    assert fpga.compute_time_us(20000) == pytest.approx(2 * fpga.compute_time_us(10000))


def test_fp_penalty_applies():
    fpga = FPGAPlatformModel()
    assert fpga.compute_time_us(10000, fp_fraction=1.0) > fpga.compute_time_us(10000)


def test_bulk_transfer_decomposition():
    fpga = FPGAPlatformModel()
    result = fpga.run(hls_cycles=10000, bytes_in=4096, bytes_out=4096)
    assert result.compute_us > 0
    assert result.bulk_transfer_us > fpga.dma_setup_us * 2
    assert result.total_us == result.compute_us + result.bulk_transfer_us


def test_larger_transfers_cost_more():
    fpga = FPGAPlatformModel()
    small = fpga.bulk_transfer_us(1024, 1024)
    large = fpga.bulk_transfer_us(65536, 65536)
    assert large > small
