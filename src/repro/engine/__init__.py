"""Graph-compiled execution backend (the `repro.engine` package).

Splits the simulator into a frontend (`compile_graph`: lower an
elaborated design into a flat `SimGraph`) and a backend
(`GraphScheduler`: execute it with batched per-cycle updates instead of
per-instruction event-queue traffic), producing byte-identical stats to
the dynamic `RuntimeEngine` — see DESIGN.md, "Graph-compiled engine".

`resolve_engine` implements the documented fallback rules: requests for
the graph engine silently degrade to the dynamic engine whenever a
feature the graph backend does not model is active (cache-backed
memory, fault injection, watchdogs, event budgets, pipeline traces).
"""

from __future__ import annotations

from typing import Optional

from repro.engine.graph import (
    GRAPH_FORMAT_VERSION,
    GraphLoweringError,
    SimGraph,
    compile_graph,
    graph_key,
)
from repro.engine.retime import (
    TRACE_COUNTERS,
    RetimeError,
    ScheduleTrace,
    TraceCapture,
    trace_cache_key,
)
from repro.engine.scheduler import GraphScheduler

ENGINES = ("dynamic", "graph", "retime")


def resolve_engine(requested: str, acc, max_events: Optional[int] = None,
                   watchdog=None,
                   schedule_trace=None) -> tuple[str, Optional[str]]:
    """Pick the engine that will actually run.

    ``acc`` is a `StandaloneAccelerator`.  Returns ``(engine, reason)``
    where ``reason`` explains a fallback (None when the request is
    honoured).  The checks mirror what the graph backend models;
    anything else must take the dynamic path so behaviour (and error
    reporting) is unchanged.

    ``retime`` shares every graph-engine prerequisite (it *is* the
    graph scheduler, consuming captured content), plus one of its own:
    a `ScheduleTrace` must be in hand.  Without one the request
    degrades to a plain graph run — which the caller can capture from,
    so the next memory configuration retimes.
    """
    if requested not in ENGINES:
        raise ValueError(
            f"unknown engine '{requested}'; valid: {', '.join(ENGINES)}"
        )
    if requested == "dynamic":
        return "dynamic", None
    if acc.memory not in ("spm", "ideal"):
        return "dynamic", f"memory='{acc.memory}' is not graph-modelled"
    if watchdog is not None:
        return "dynamic", "watchdog attached"
    if max_events is not None:
        return "dynamic", "max_events budget requires the event queue"
    if any(getattr(obj, "_finj", None) is not None
           for obj in acc.system.objects.values()):
        return "dynamic", "fault injection active"
    if any(getattr(obj, "_san", None) is not None
           for obj in acc.system.objects.values()):
        return "dynamic", "access sanitizer attached"
    if acc.unit.engine.pipeline_trace is not None:
        return "dynamic", "pipeline trace attached"
    if acc.unit.comm.memctrl.strict_ranges:
        return "dynamic", "strictly-ordered memory regions"
    if requested == "retime":
        if schedule_trace is None:
            return "graph", "no schedule trace captured for this datapath"
        return "retime", None
    return "graph", None


__all__ = [
    "ENGINES",
    "GRAPH_FORMAT_VERSION",
    "TRACE_COUNTERS",
    "GraphLoweringError",
    "GraphScheduler",
    "RetimeError",
    "ScheduleTrace",
    "SimGraph",
    "TraceCapture",
    "compile_graph",
    "graph_key",
    "resolve_engine",
    "trace_cache_key",
]
