"""Hardware profiles and power/area/energy models.

`profile` defines functional-unit and register characteristics (latency,
area, leakage, per-op energy); `default_profile` ships a 40 nm-flavoured
characterization modelled on the one gem5-Aladdin/gem5-SALAM validated
against Synopsys Design Compiler; `cacti` is an analytical SRAM model
standing in for McPAT/CACTI; `power` aggregates everything into the
static/dynamic breakdown of the paper's Fig. 4.
"""

from repro.hw.profile import (
    FunctionalUnitSpec,
    HardwareProfile,
    RegisterSpec,
    fu_class_for,
    FU_NONE,
)
from repro.hw.default_profile import default_profile
from repro.hw.cacti import SRAMConfig, SRAMMetrics, cacti_model
from repro.hw.power import PowerReport, AreaReport

__all__ = [
    "FunctionalUnitSpec",
    "RegisterSpec",
    "HardwareProfile",
    "fu_class_for",
    "FU_NONE",
    "default_profile",
    "SRAMConfig",
    "SRAMMetrics",
    "cacti_model",
    "PowerReport",
    "AreaReport",
]
